//! Shared machinery of the baseline floorplanners: candidate encoding,
//! cost function, perturbation moves and result reporting.

use std::time::Instant;

use rand::seq::SliceRandom;
use rand::Rng;

use afp_circuit::{shapes::shape_sets, Circuit, Shape, ShapeSet, SHAPES_PER_BLOCK};
use afp_layout::metrics::MetricsScratch;
use afp_layout::{
    constraints, metrics, Canvas, Floorplan, PackScratch, RealizeCache, RewardWeights,
    SequencePair, SpacingConfig,
};

pub use afp_par::{CancelToken, RunControl, StopReason};

/// A candidate solution: a sequence pair plus the index of the chosen
/// candidate shape for every block.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Positive sequence (block indices).
    pub positive: Vec<usize>,
    /// Negative sequence (block indices).
    pub negative: Vec<usize>,
    /// Chosen shape index per block (0..SHAPES_PER_BLOCK).
    pub shape_choice: Vec<usize>,
}

impl Candidate {
    /// The identity candidate: natural order, most-square shapes.
    pub fn identity(num_blocks: usize, shape_sets: &[ShapeSet]) -> Self {
        Candidate {
            positive: (0..num_blocks).collect(),
            negative: (0..num_blocks).collect(),
            shape_choice: shape_sets.iter().map(|s| s.most_square()).collect(),
        }
    }

    /// A uniformly random candidate.
    pub fn random<R: Rng + ?Sized>(num_blocks: usize, rng: &mut R) -> Self {
        let mut positive: Vec<usize> = (0..num_blocks).collect();
        let mut negative: Vec<usize> = (0..num_blocks).collect();
        positive.shuffle(rng);
        negative.shuffle(rng);
        Candidate {
            positive,
            negative,
            shape_choice: (0..num_blocks)
                .map(|_| rng.gen_range(0..SHAPES_PER_BLOCK))
                .collect(),
        }
    }

    /// Applies a uniformly random perturbation move in place: swap two blocks
    /// in the positive sequence, in the negative sequence, in both, or change
    /// one block's shape.
    ///
    /// Returns an undo token; passing it to [`Candidate::undo`] restores the
    /// candidate exactly, which lets SA revert a rejected move without
    /// cloning the whole candidate on every proposal.
    ///
    /// Equivalent to [`Candidate::perturb_with`] under [`MoveMix::uniform`]
    /// (same moves, same RNG stream).
    pub fn perturb<R: Rng + ?Sized>(&mut self, rng: &mut R) -> PerturbUndo {
        self.perturb_with(&MoveMix::uniform(), rng)
    }

    /// [`Candidate::perturb`] with a configurable move mix: with probability
    /// `mix.locality_bias`, a sequence-swap move exchanges *adjacent*
    /// positions `(i, i + 1)` instead of two uniformly random positions.
    ///
    /// Adjacent swaps are the moves the incremental cost pipeline digests
    /// cheapest: a swap at sequence positions `i < j` forces the FAST-SP
    /// pack to re-sweep `(n − i) + (j + 1)` positions and dirties every block
    /// whose packed coordinates shift, so pulling `j − i` down to 1 shrinks
    /// both the pack re-sweep and the realization/metrics dirty sets (see
    /// `ARCHITECTURE.md`, *Layer 5*, and `docs/TUNING.md` for how to pick the
    /// bias). At `locality_bias = 0.0` this is exactly [`Candidate::perturb`]
    /// — including the RNG stream, so existing seeds reproduce old walks.
    ///
    /// # Examples
    ///
    /// ```
    /// use afp_metaheuristics::{Candidate, MoveMix, PerturbUndo};
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = StdRng::seed_from_u64(9);
    /// let mut candidate = Candidate::random(12, &mut rng);
    /// let reference = candidate.clone();
    ///
    /// // A fully local mix: every sequence swap is adjacent.
    /// let mix = MoveMix::local(1.0);
    /// for _ in 0..100 {
    ///     let undo = candidate.perturb_with(&mix, &mut rng);
    ///     if let PerturbUndo::SwapPositive(i, j) = undo {
    ///         assert_eq!(j, i + 1, "biased swaps exchange neighbours");
    ///     }
    ///     candidate.undo(undo);
    ///     assert_eq!(candidate, reference, "undo reverts biased moves too");
    /// }
    /// ```
    pub fn perturb_with<R: Rng + ?Sized>(&mut self, mix: &MoveMix, rng: &mut R) -> PerturbUndo {
        let n = self.positive.len();
        if n < 2 {
            return PerturbUndo::Noop;
        }
        match rng.gen_range(0..4) {
            0 => {
                let (i, j) = swap_pair(n, mix, rng);
                self.positive.swap(i, j);
                PerturbUndo::SwapPositive(i, j)
            }
            1 => {
                let (i, j) = swap_pair(n, mix, rng);
                self.negative.swap(i, j);
                PerturbUndo::SwapNegative(i, j)
            }
            2 => {
                let (i, j) = swap_pair(n, mix, rng);
                self.positive.swap(i, j);
                let (k, l) = swap_pair(n, mix, rng);
                self.negative.swap(k, l);
                PerturbUndo::SwapBoth {
                    positive: (i, j),
                    negative: (k, l),
                }
            }
            _ => {
                let b = rng.gen_range(0..n);
                let previous = self.shape_choice[b];
                self.shape_choice[b] = rng.gen_range(0..SHAPES_PER_BLOCK);
                PerturbUndo::Shape { block: b, previous }
            }
        }
    }

    /// Reverts the move recorded by a [`Candidate::perturb`] call. Tokens
    /// must be applied in reverse order of the moves they record.
    pub fn undo(&mut self, token: PerturbUndo) {
        match token {
            PerturbUndo::Noop => {}
            PerturbUndo::SwapPositive(i, j) => self.positive.swap(i, j),
            PerturbUndo::SwapNegative(i, j) => self.negative.swap(i, j),
            PerturbUndo::SwapBoth { positive, negative } => {
                self.positive.swap(positive.0, positive.1);
                self.negative.swap(negative.0, negative.1);
            }
            PerturbUndo::Shape { block, previous } => self.shape_choice[block] = previous,
        }
    }

    /// Converts the candidate to a packed [`SequencePair`] over the given
    /// shapes (one [`ShapeSet`] per block, optionally congestion-inflated).
    pub fn to_sequence_pair(&self, shapes: &[Shape]) -> SequencePair {
        SequencePair {
            positive: self.positive.clone(),
            negative: self.negative.clone(),
            shapes: shapes.to_vec(),
        }
    }
}

/// The inverse record of one [`Candidate::perturb`] move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerturbUndo {
    /// The candidate was too small to perturb; nothing to revert.
    Noop,
    /// Swap back positions `(i, j)` of the positive sequence.
    SwapPositive(usize, usize),
    /// Swap back positions `(i, j)` of the negative sequence.
    SwapNegative(usize, usize),
    /// Swap back one position pair in each sequence.
    SwapBoth {
        /// Positions swapped in `s⁺`.
        positive: (usize, usize),
        /// Positions swapped in `s⁻`.
        negative: (usize, usize),
    },
    /// Restore a block's previous shape choice.
    Shape {
        /// The perturbed block index.
        block: usize,
        /// Its shape index before the move.
        previous: usize,
    },
}

/// The perturbation move mix: how [`Candidate::perturb_with`] picks the two
/// sequence positions a swap move exchanges.
///
/// The bias exists for the incremental cost pipeline's benefit: uniform swaps
/// produce an expected re-sweep of roughly the whole sequence per move (the
/// pack cache's replay savings cancel against its bookkeeping — see the
/// `incremental/pack_walk_*` benches), while adjacent swaps keep dirty sets
/// minimal. `docs/TUNING.md` discusses how the bias trades search reach
/// against per-move cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveMix {
    /// Probability in `[0, 1]` that a sequence-swap move exchanges adjacent
    /// positions `(i, i + 1)` instead of two uniformly random positions.
    /// `0.0` reproduces the historical uniform mix bit-for-bit (no extra RNG
    /// draw is made, so seeds replay identically).
    pub locality_bias: f64,
}

impl MoveMix {
    /// The historical uniform mix: every swap picks two uniform positions.
    pub fn uniform() -> Self {
        MoveMix { locality_bias: 0.0 }
    }

    /// A locality-aware mix: with probability `bias` (clamped to `[0, 1]`), a
    /// swap exchanges adjacent positions.
    pub fn local(bias: f64) -> Self {
        MoveMix {
            locality_bias: bias.clamp(0.0, 1.0),
        }
    }
}

impl Default for MoveMix {
    fn default() -> Self {
        MoveMix::uniform()
    }
}

/// Picks the positions a swap move exchanges under the given mix. The biased
/// branch draws its coin only when the bias is positive, so the uniform mix
/// consumes exactly the RNG stream the historical `perturb` did.
fn swap_pair<R: Rng + ?Sized>(n: usize, mix: &MoveMix, rng: &mut R) -> (usize, usize) {
    if mix.locality_bias > 0.0 && rng.gen::<f64>() < mix.locality_bias {
        let i = rng.gen_range(0..n - 1);
        (i, i + 1)
    } else {
        two_distinct(n, rng)
    }
}

fn two_distinct<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (usize, usize) {
    let i = rng.gen_range(0..n);
    let mut j = rng.gen_range(0..n);
    while j == i {
        j = rng.gen_range(0..n);
    }
    (i, j)
}

/// Grid discretization for an `n`-block problem: the paper's 32×32 grid for
/// every circuit in its size class (n ≤ 64 — bit-identical to the historical
/// fixed grid), then the next multiple of 32 that gives at least `4·√n` cells
/// per side, capped at 128 (the incremental realization engine stores cells
/// in a byte). 200 blocks → 64, 500 → 96, 1000 → 128.
pub fn grid_side_for(n: usize) -> usize {
    if n <= 64 {
        return afp_layout::GRID_SIZE;
    }
    let wanted = 4.0 * (n as f64).sqrt();
    let side = 32 * (wanted / 32.0).ceil() as usize;
    side.clamp(64, 128)
}

/// The shared evaluation context: circuit, canvas, per-block shape sets,
/// optional congestion-aware spacing and the reward normalization.
#[derive(Debug)]
pub struct Problem {
    /// The circuit being floorplanned. Private because the effective-shape
    /// table is derived from its connectivity; read through
    /// [`Problem::circuit`].
    circuit: Circuit,
    /// The placement canvas.
    pub canvas: Canvas,
    /// Cells per side of the placement grid ([`grid_side_for`] the block
    /// count): every floorplan realized for this problem — `Problem::realize`,
    /// `CostCache`, each `EvalPool` worker — uses this discretization.
    pub grid_side: usize,
    /// Candidate shapes per block. Private so the precomputed
    /// effective-shape table cannot silently go stale; read through
    /// [`Problem::shape_sets`].
    shape_sets: Vec<ShapeSet>,
    /// Congestion-aware spacing applied to baseline shapes (paper §V-B), or
    /// `None` to pack the raw shapes. Mutate through
    /// [`Problem::set_spacing`] / [`Problem::without_spacing`], which keep
    /// the effective-shape table in sync.
    spacing: Option<SpacingConfig>,
    /// `HPWL_min` estimate used by the reward (paper Eq. 5).
    pub hpwl_min: f64,
    /// Reward weights (α, β, γ, violation penalty).
    pub weights: RewardWeights,
    /// Effective (spacing-inflated) candidate shape per `[block][shape
    /// index]`, precomputed once: the congestion margin depends only on the
    /// block's connectivity and the chosen shape, never on the candidate's
    /// sequences, so re-deriving it on every cost evaluation (a full
    /// `nets_of_block` scan per block) dominated the SA inner loop.
    effective_shapes: Vec<[Shape; SHAPES_PER_BLOCK]>,
}

impl Problem {
    /// Builds the evaluation context for a circuit with the paper's defaults
    /// (congestion-aware spacing enabled for baselines).
    pub fn new(circuit: &Circuit) -> Self {
        let mut problem = Problem {
            canvas: Canvas::for_circuit(circuit),
            grid_side: grid_side_for(circuit.num_blocks()),
            shape_sets: shape_sets(circuit),
            spacing: Some(SpacingConfig::default()),
            hpwl_min: metrics::hpwl_lower_bound(circuit),
            weights: RewardWeights::default(),
            circuit: circuit.clone(),
            effective_shapes: Vec::new(),
        };
        problem.rebuild_effective_shapes();
        problem
    }

    /// The circuit being floorplanned.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The candidate shapes per block.
    pub fn shape_sets(&self) -> &[ShapeSet] {
        &self.shape_sets
    }

    /// The congestion-aware spacing decoration, if enabled.
    pub fn spacing(&self) -> Option<&SpacingConfig> {
        self.spacing.as_ref()
    }

    /// Replaces the spacing decoration and refreshes the effective shapes.
    pub fn set_spacing(&mut self, spacing: Option<SpacingConfig>) {
        self.spacing = spacing;
        self.rebuild_effective_shapes();
    }

    /// Disables the congestion-aware spacing decoration.
    pub fn without_spacing(mut self) -> Self {
        self.set_spacing(None);
        self
    }

    /// Recomputes the effective-shape table from `shape_sets` + `spacing`.
    fn rebuild_effective_shapes(&mut self) {
        self.effective_shapes = self
            .circuit
            .blocks
            .iter()
            .zip(&self.shape_sets)
            .map(|(block, set)| {
                std::array::from_fn(|k| {
                    let shape = set.shape(k);
                    match &self.spacing {
                        Some(cfg) => cfg.inflate_shape(&self.circuit, block, &shape),
                        None => shape,
                    }
                })
            })
            .collect();
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.circuit.num_blocks()
    }

    /// The (possibly inflated) shape of each block under a candidate's shape
    /// choices.
    pub fn shapes_for(&self, candidate: &Candidate) -> Vec<Shape> {
        candidate
            .shape_choice
            .iter()
            .enumerate()
            .map(|(b, &s)| self.effective_shapes[b][s])
            .collect()
    }

    /// The shapes of [`Problem::shapes_for`], written into a caller-held
    /// buffer instead of a fresh allocation.
    pub fn shapes_for_into(&self, candidate: &Candidate, out: &mut Vec<Shape>) {
        out.clear();
        out.extend(
            candidate
                .shape_choice
                .iter()
                .enumerate()
                .map(|(b, &s)| self.effective_shapes[b][s]),
        );
    }

    /// Realizes a candidate as a floorplan on the shared canvas, at this
    /// problem's grid discretization.
    pub fn realize(&self, candidate: &Candidate) -> Floorplan {
        let shapes = self.shapes_for(candidate);
        let mut scratch = PackScratch::with_capacity(shapes.len());
        let mut fp = Floorplan::with_grid_side(self.canvas, self.grid_side);
        candidate.to_sequence_pair(&shapes).to_floorplan_into(
            &self.circuit,
            self.canvas,
            &mut scratch,
            &mut fp,
        );
        fp
    }

    /// Cost of a candidate (lower is better): the negative episode reward of
    /// its floorplan, so that cost minimization and reward maximization agree.
    pub fn cost(&self, candidate: &Candidate) -> f64 {
        let floorplan = self.realize(candidate);
        -metrics::episode_reward(&self.circuit, &floorplan, self.hpwl_min, &self.weights)
    }

    /// [`Problem::cost`] through a [`CostCache`]: identical values, but
    /// repeated evaluations reuse every buffer (pack scratch, shapes,
    /// floorplan, HPWL centers), run the incremental cost pipeline
    /// (dirty-set pack → dirty-block realization → dirty-set metrics), and
    /// candidates seen recently — e.g. the pre-move state SA returns to after
    /// a rejected move, or a GA elite carried into the next generation — are
    /// answered from the memo without re-packing.
    ///
    /// # Examples
    ///
    /// ```
    /// use afp_circuit::generators;
    /// use afp_metaheuristics::{Candidate, CostCache, Problem};
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let circuit = generators::ota5();
    /// let problem = Problem::new(&circuit);
    /// let mut cache = CostCache::new(&problem);
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let mut candidate = Candidate::random(problem.num_blocks(), &mut rng);
    ///
    /// let cost = problem.cost_cached(&candidate, &mut cache);
    /// assert_eq!(cost, problem.cost(&candidate), "bit-identical to the uncached path");
    ///
    /// // A rejected SA move: perturb, evaluate, undo — the revert is
    /// // answered from the memo without re-packing anything.
    /// let undo = candidate.perturb(&mut rng);
    /// let _ = problem.cost_cached(&candidate, &mut cache);
    /// candidate.undo(undo);
    /// assert_eq!(problem.cost_cached(&candidate, &mut cache), cost);
    /// assert!(cache.hits >= 1);
    /// ```
    pub fn cost_cached(&self, candidate: &Candidate, cache: &mut CostCache) -> f64 {
        let key = candidate_key(candidate);
        if let Some(cost) = cache.lookup(key) {
            cache.hits += 1;
            return cost;
        }
        cache.misses += 1;
        self.shapes_for_into(candidate, &mut cache.shapes);
        if cache.use_incremental {
            // Incremental engine: diff the packed positions against the
            // previous evaluation's snap decisions and only re-snap dirty
            // blocks. Perturb/undo/crossover need no explicit hook — the
            // candidate's sequences and shapes flow into the diff.
            afp_layout::sequence_pair::realize_floorplan_incremental(
                &candidate.positive,
                &candidate.negative,
                &cache.shapes,
                &self.circuit,
                self.canvas,
                &mut cache.pack,
                &mut cache.floorplan,
                &mut cache.realize,
            );
        } else {
            afp_layout::sequence_pair::realize_floorplan(
                &candidate.positive,
                &candidate.negative,
                &cache.shapes,
                &self.circuit,
                self.canvas,
                &mut cache.pack,
                &mut cache.floorplan,
            );
            // The full path bypasses the realize cache; drop its episode so a
            // later incremental call cannot pair stale decisions with a
            // floorplan it did not produce.
            cache.realize.invalidate();
        }
        let cost = if cache.use_incremental && cache.use_incremental_metrics {
            // Incremental metrics: the realization engine just reported which
            // blocks it re-searched; only their incident nets and constraints
            // are re-evaluated. Bit-identical to the full rescan below.
            let dirty = if cache.realize.last_was_full_rebuild() {
                metrics::DirtySet::Full
            } else {
                metrics::DirtySet::Blocks(cache.realize.dirty_blocks())
            };
            -metrics::episode_reward_incremental(
                &self.circuit,
                &cache.floorplan,
                self.hpwl_min,
                &self.weights,
                &mut cache.metrics,
                dirty,
            )
        } else {
            // Full rescan (the metrics oracle). It does not maintain the
            // incremental term state — and its penalty gate can return before
            // the center fill that would drop that state runs — so the state
            // is invalidated explicitly here; switching paths mid-run then
            // just costs the next incremental call a full term refresh.
            let cost = -metrics::episode_reward_with(
                &self.circuit,
                &cache.floorplan,
                self.hpwl_min,
                &self.weights,
                &mut cache.metrics,
            );
            cache.metrics.invalidate_terms();
            cost
        };
        cache.insert(key, cost);
        cost
    }
}

/// Number of direct-mapped memo slots in a [`CostCache`] (power of two).
const MEMO_SLOTS: usize = 1024;

/// Reusable evaluation state for the metaheuristic inner loops: the FAST-SP
/// pack scratch, shape / floorplan / metric buffers, the incremental
/// realization and metrics engines, and a small direct-mapped memo keyed on
/// a candidate fingerprint.
///
/// This is the optimizer-facing handle on the incremental cost pipeline
/// (see `ARCHITECTURE.md`, *The four-layer incremental stack*): by default
/// [`Problem::cost_cached`] realizes through the dirty-block engine and
/// evaluates HPWL / violations through the dirty-set term cache, both
/// bit-identical to the full paths. The `full-realize` and `full-metrics`
/// features (or [`CostCache::set_incremental`] /
/// [`CostCache::set_incremental_metrics`] at runtime) select the retained
/// full-rescan oracles instead.
///
/// One `CostCache` is owned per optimizer run (it is keyed to one
/// [`Problem`]'s canvas and circuit); sharing it across problems would mix
/// canvases.
///
/// # Examples
///
/// ```
/// use afp_circuit::generators;
/// use afp_metaheuristics::{Candidate, CostCache, Problem};
///
/// let circuit = generators::ota3();
/// let problem = Problem::new(&circuit);
/// let mut cache = CostCache::new(&problem);
/// let c = Candidate::identity(problem.num_blocks(), problem.shape_sets());
/// assert_eq!(problem.cost_cached(&c, &mut cache), problem.cost(&c));
/// // The cache exposes its counters for observability (see also
/// // `CostCache::realize_stats` for the realization engine's).
/// assert_eq!((cache.hits, cache.misses), (0, 1));
/// ```
#[derive(Debug)]
pub struct CostCache {
    pack: PackScratch,
    metrics: MetricsScratch,
    floorplan: Floorplan,
    /// Previous evaluation's snap decisions — the incremental realization
    /// engine's state (see `afp_layout::sequence_pair` module docs).
    realize: RealizeCache,
    /// Whether `cost_cached` realizes incrementally (the default) or through
    /// the always-full oracle path (`full-realize` feature default, or
    /// [`CostCache::set_incremental`]). Both produce bit-identical costs.
    use_incremental: bool,
    /// Whether `cost_cached` evaluates HPWL / violations through the
    /// incremental per-net / per-constraint term cache (the default) or the
    /// full rescan (`full-metrics` feature default, or
    /// [`CostCache::set_incremental_metrics`]). The incremental path needs
    /// the realization engine's dirty set, so it engages only while
    /// `use_incremental` is also on. Both produce bit-identical costs.
    use_incremental_metrics: bool,
    shapes: Vec<Shape>,
    /// `(fingerprint, cost)` slots; fingerprint 0 marks an empty slot.
    memo: Vec<(u64, f64)>,
    /// Evaluations answered from the memo.
    pub hits: u64,
    /// Evaluations that re-packed the candidate.
    pub misses: u64,
}

impl CostCache {
    /// Creates a cache sized for one problem. Realization is incremental
    /// unless the crate is built with the `full-realize` feature, which keeps
    /// the from-scratch path as the retained oracle.
    pub fn new(problem: &Problem) -> Self {
        let n = problem.num_blocks();
        CostCache {
            pack: PackScratch::with_capacity(n),
            metrics: MetricsScratch::new(),
            floorplan: Floorplan::with_grid_side(problem.canvas, problem.grid_side),
            realize: RealizeCache::new(),
            use_incremental: !cfg!(feature = "full-realize"),
            use_incremental_metrics: !cfg!(feature = "full-metrics"),
            shapes: Vec::with_capacity(n),
            memo: vec![(0, 0.0); MEMO_SLOTS],
            hits: 0,
            misses: 0,
        }
    }

    /// Selects the realization path at runtime (used by the differential
    /// tests and the perf snapshot to compare both engines in one build).
    pub fn set_incremental(&mut self, incremental: bool) {
        self.use_incremental = incremental;
    }

    /// Selects the metrics path at runtime: incremental per-net /
    /// per-constraint terms vs the full rescan oracle. The incremental path
    /// additionally requires incremental realization (it consumes that
    /// engine's dirty set); with [`CostCache::set_incremental`]`(false)` this
    /// flag is ignored and the full rescan runs.
    pub fn set_incremental_metrics(&mut self, incremental: bool) {
        self.use_incremental_metrics = incremental;
    }

    /// Drops the incremental engine's cached episode. Candidate mutations
    /// (perturb/undo/crossover) never require this — it exists for callers
    /// that mutate the problem or floorplan state out of band.
    pub fn invalidate_realize(&mut self) {
        self.realize.invalidate();
    }

    /// Counters of the incremental realization engine (hit rate, kept /
    /// replayed / searched blocks, full rebuilds).
    pub fn realize_stats(&self) -> &RealizeCache {
        &self.realize
    }

    /// Times the incremental metrics engine abandoned its term state for a
    /// silent full rescan. Structurally zero at every circuit size since the
    /// per-block / per-constraint masks spill past one word instead of
    /// falling back; asserted by the large-n CI gates.
    pub fn fallback_rescans(&self) -> u64 {
        self.metrics.fallback_rescans
    }

    fn lookup(&self, key: u64) -> Option<f64> {
        let (tag, cost) = self.memo[(key as usize) & (MEMO_SLOTS - 1)];
        (tag == key).then_some(cost)
    }

    fn insert(&mut self, key: u64, cost: f64) {
        self.memo[(key as usize) & (MEMO_SLOTS - 1)] = (key, cost);
    }
}

/// The parallel batched evaluation engine of the population optimizers: one
/// [`CostCache`] — with its full `PackCache`/`RealizeCache`/`MetricsScratch`
/// stack — per worker, and a generation-at-a-time `evaluate` that fans the
/// candidates out over the workers through a persistent
/// [`afp_par::WorkerPool`].
///
/// This is layer 5 of the incremental stack (see `ARCHITECTURE.md`): where
/// layers 1–4 make one evaluation cheap, the pool makes a *generation* of
/// them concurrent. Worker caches are built once, at pool construction, and
/// the scoped map lends each worker `&mut` access to its own cache per batch
/// — so caches stay warm across generations and no locking happens on the
/// evaluation path. The worker *threads* are equally persistent: they are
/// spawned at pool construction and parked between generations, so an
/// optimizer pays one wake-up per generation per active worker instead of a
/// thread spawn-and-join (the pre-PR-6 cost). Generations smaller than the
/// worker complement wake only as many threads as there are candidates;
/// [`pool_stats`](EvalPool::pool_stats) exposes the dispatch counters.
///
/// # Determinism contract
///
/// * **Bit-identical at one worker.** With `workers = 1`, `evaluate` *is* the
///   serial `cost_cached` loop over one cache — the byte-for-byte code path
///   GA/PSO/SP-RL ran before the pool existed.
/// * **Seed-stable at any worker count.** Costs come out in candidate order
///   regardless of which worker computed them, and each individual cost is
///   bit-identical to `Problem::cost` by the layer 1–4 bit-identity contract
///   — *no matter what state the evaluating worker's cache is in*. Worker
///   count therefore changes scheduling only, never results: the optimizers'
///   whole trajectories are reproducible for a seed at any `workers`.
///
/// Like [`CostCache`], a pool is keyed to one [`Problem`]; build one pool per
/// problem.
///
/// # Examples
///
/// ```
/// use afp_circuit::generators;
/// use afp_metaheuristics::{Candidate, EvalPool, Problem};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let circuit = generators::ota8();
/// let problem = Problem::new(&circuit);
/// let mut rng = StdRng::seed_from_u64(3);
/// let generation: Vec<Candidate> = (0..12)
///     .map(|_| Candidate::random(problem.num_blocks(), &mut rng))
///     .collect();
///
/// let mut pool = EvalPool::new(&problem, 4);
/// let costs = pool.evaluate(&problem, &generation);
///
/// // Costs are in candidate order and bit-identical to the serial path.
/// for (candidate, &cost) in generation.iter().zip(&costs) {
///     assert_eq!(cost, problem.cost(candidate));
/// }
/// assert_eq!(pool.misses(), 12);
/// ```
#[derive(Debug)]
pub struct EvalPool {
    /// One warm evaluation stack per worker; `caches.len()` is the worker
    /// count handed to the scoped map.
    caches: Vec<CostCache>,
    /// The parked worker threads servicing `evaluate` batches. Sized to
    /// `caches.len()`, spawned once here, alive until the pool drops — a
    /// 1-worker pool spawns no thread at all.
    pool: afp_par::WorkerPool,
}

impl EvalPool {
    /// Creates a pool with `workers` worker caches (and `workers − 1` parked
    /// worker threads) for one problem. `workers = 0` means one per
    /// available hardware thread; any value is clamped to at least 1.
    pub fn new(problem: &Problem, workers: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            workers
        }
        .max(1);
        EvalPool {
            caches: (0..workers).map(|_| CostCache::new(problem)).collect(),
            pool: afp_par::WorkerPool::new(workers),
        }
    }

    /// Number of workers (and worker caches) the pool owns.
    pub fn workers(&self) -> usize {
        self.caches.len()
    }

    /// Evaluates a generation of candidates, returning their costs in
    /// candidate order. Values are bit-identical to [`Problem::cost`] for
    /// every candidate at every worker count (see the determinism contract
    /// above); with one worker no thread is woken and the batch runs inline.
    pub fn evaluate(&mut self, problem: &Problem, candidates: &[Candidate]) -> Vec<f64> {
        self.pool
            .map_scoped(candidates, &mut self.caches, |cache, candidate| {
                problem.cost_cached(candidate, cache)
            })
    }

    /// Evaluates a single candidate through worker 0's cache — the pool's
    /// serial entry point for recurrences (an SA chain, SP-RL's per-episode
    /// policy update) that only expose one candidate at a time.
    pub fn evaluate_one(&mut self, problem: &Problem, candidate: &Candidate) -> f64 {
        problem.cost_cached(candidate, &mut self.caches[0])
    }

    /// Total memo hits across all worker caches.
    pub fn hits(&self) -> u64 {
        self.caches.iter().map(|c| c.hits).sum()
    }

    /// Total memo misses (full evaluations) across all worker caches.
    pub fn misses(&self) -> u64 {
        self.caches.iter().map(|c| c.misses).sum()
    }

    /// Total incremental-metrics fallback rescans across all worker caches
    /// (see [`CostCache::fallback_rescans`]); structurally zero at every n.
    pub fn fallback_rescans(&self) -> u64 {
        self.caches.iter().map(|c| c.fallback_rescans()).sum()
    }

    /// Dispatch counters of the underlying [`afp_par::WorkerPool`]: batches
    /// served, inline (single-worker) batches, thread wake-ups, and batches
    /// clamped below the worker complement.
    pub fn pool_stats(&self) -> afp_par::PoolStats {
        self.pool.stats()
    }

    /// Selects the realization path on every worker cache (see
    /// [`CostCache::set_incremental`]).
    pub fn set_incremental(&mut self, incremental: bool) {
        for cache in &mut self.caches {
            cache.set_incremental(incremental);
        }
    }

    /// Selects the metrics path on every worker cache (see
    /// [`CostCache::set_incremental_metrics`]).
    pub fn set_incremental_metrics(&mut self, incremental: bool) {
        for cache in &mut self.caches {
            cache.set_incremental_metrics(incremental);
        }
    }
}

/// Fingerprint of a candidate (sequences + shape choices). Zero is reserved
/// as the empty-slot sentinel of the memo.
///
/// Four xor-multiply accumulator lanes fed round-robin: a single FNV chain
/// serializes one ~4-cycle multiply per element (~60 ns for 19 blocks),
/// whereas independent lanes pipeline. Position sensitivity comes from the
/// lane structure plus the per-element index salt; the section constants keep
/// `positive`/`negative`/`shape_choice` from aliasing.
fn candidate_key(candidate: &Candidate) -> u64 {
    const M: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut lanes = [
        0x243f_6a88_85a3_08d3u64,
        0x1319_8a2e_0370_7344,
        0xa409_3822_299f_31d0,
        0x082e_fa98_ec4e_6c89,
    ];
    let mut idx = 0u64;
    let mut eat_section = |values: &[usize], salt: u64| {
        for &v in values {
            let lane = (idx & 3) as usize;
            lanes[lane] = (lanes[lane] ^ (v as u64 ^ salt).wrapping_add(idx)).wrapping_mul(M);
            idx += 1;
        }
    };
    eat_section(&candidate.positive, 0x51);
    eat_section(&candidate.negative, 0x52EC);
    eat_section(&candidate.shape_choice, 0x53A9_0000);
    // Cross-lane avalanche so every input bit reaches every output bit.
    let mut hash = lanes[0];
    hash = (hash ^ lanes[1].rotate_left(17)).wrapping_mul(M);
    hash = (hash ^ lanes[2].rotate_left(31)).wrapping_mul(M);
    hash = (hash ^ lanes[3].rotate_left(47)).wrapping_mul(M);
    hash ^= hash >> 29;
    hash = hash.wrapping_mul(M);
    hash ^= hash >> 32;
    hash.max(1)
}

/// The outcome of one baseline optimization run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Name of the algorithm that produced the result.
    pub algorithm: String,
    /// The final floorplan.
    pub floorplan: Floorplan,
    /// Metrics of the final floorplan.
    pub metrics: metrics::FloorplanMetrics,
    /// Episode reward (paper Eq. 5) of the final floorplan.
    pub reward: f64,
    /// Wall-clock optimization time in seconds.
    pub runtime_s: f64,
    /// Number of candidate evaluations performed.
    pub evaluations: usize,
    /// Why the run returned: [`StopReason::Completed`] for a full-budget run
    /// (the only value historical entry points ever produce), any other
    /// variant when a [`RunControl`] cut the run short — in which case
    /// `floorplan`/`reward` are the best *so far*, not the best of the full
    /// budget.
    pub stop: StopReason,
}

impl BaselineResult {
    /// Assembles a result from a problem and its best candidate (with
    /// [`StopReason::Completed`]; interrupted runs override via
    /// [`with_stop`](BaselineResult::with_stop)).
    pub fn from_candidate(
        algorithm: &str,
        problem: &Problem,
        candidate: &Candidate,
        started: Instant,
        evaluations: usize,
    ) -> Self {
        let floorplan = problem.realize(candidate);
        let m = metrics::metrics(&problem.circuit, &floorplan);
        let reward = metrics::episode_reward(
            &problem.circuit,
            &floorplan,
            problem.hpwl_min,
            &problem.weights,
        );
        BaselineResult {
            algorithm: algorithm.to_string(),
            floorplan,
            metrics: m,
            reward,
            runtime_s: started.elapsed().as_secs_f64(),
            evaluations,
            stop: StopReason::Completed,
        }
    }

    /// Replaces the stop reason (builder-style, used by the controlled
    /// entry points when a run is interrupted).
    pub fn with_stop(mut self, stop: StopReason) -> Self {
        self.stop = stop;
        self
    }
}

/// Whether a candidate realizes to a fully placed, violation-free floorplan
/// — the predicate `stop_on_first_feasible` races and
/// [`select_winner`](crate::select_winner) agree on.
pub fn candidate_is_feasible(problem: &Problem, candidate: &Candidate) -> bool {
    let floorplan = problem.realize(candidate);
    floorplan.num_placed() == problem.num_blocks()
        && !constraints::has_violations(problem.circuit(), &floorplan)
}

/// One slot of a multistart / portfolio race: what became of the chain that
/// ran (or should have run) there.
///
/// Races isolate failure per slot — a panicking chain is caught, recorded
/// here and its worker's [`CostCache`] rebuilt, instead of unwinding the
/// whole race (see the "run control & failure domains" section of
/// `ARCHITECTURE.md`).
#[derive(Debug, Clone)]
pub enum ChainOutcome {
    /// The chain ran to a result (complete or control-interrupted — check
    /// [`BaselineResult::stop`]).
    Finished(BaselineResult),
    /// The chain panicked; the payload's message is retained. The worker's
    /// cache was treated as poisoned and rebuilt, so later chains on the
    /// same worker are unaffected.
    Panicked(String),
    /// The chain never started: cancellation (deadline, explicit cancel, or
    /// a sibling's first-feasible win) tripped at the pool's chunk-claim
    /// boundary before this slot was claimed.
    Skipped,
}

impl ChainOutcome {
    /// The result, if the chain finished.
    pub fn result(&self) -> Option<&BaselineResult> {
        match self {
            ChainOutcome::Finished(result) => Some(result),
            _ => None,
        }
    }

    /// Whether the chain panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, ChainOutcome::Panicked(_))
    }

    /// The panic message, if the chain panicked.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            ChainOutcome::Panicked(message) => Some(message),
            _ => None,
        }
    }
}

/// Extracts a human-readable message from a caught panic payload.
///
/// Public since PR 8: the serve-layer job engine isolates per-job panics with
/// the same `catch_unwind` + [`ChainOutcome`] machinery the chain races use,
/// and records the extracted message in its `Failed` job state.
pub fn panic_payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_candidate_is_well_formed() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let c = Candidate::identity(problem.num_blocks(), problem.shape_sets());
        assert_eq!(c.positive.len(), 5);
        assert_eq!(c.shape_choice.len(), 5);
        let cost = problem.cost(&c);
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn random_candidates_are_permutations() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Candidate::random(8, &mut rng);
        let mut pos = c.positive.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..8).collect::<Vec<_>>());
        let mut neg = c.negative.clone();
        neg.sort_unstable();
        assert_eq!(neg, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn perturbation_preserves_permutation_property() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Candidate::random(10, &mut rng);
        for _ in 0..50 {
            c.perturb(&mut rng);
        }
        let mut pos = c.positive.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..10).collect::<Vec<_>>());
        assert!(c.shape_choice.iter().all(|&s| s < SHAPES_PER_BLOCK));
    }

    #[test]
    fn spacing_increases_cost() {
        let circuit = generators::ota8();
        let with = Problem::new(&circuit);
        let without = Problem::new(&circuit).without_spacing();
        let c = Candidate::identity(with.num_blocks(), with.shape_sets());
        // Inflated shapes should not make the floorplan cheaper.
        assert!(with.cost(&c) >= without.cost(&c) * 0.99);
    }

    #[test]
    fn uniform_mix_replays_the_historical_rng_stream() {
        // `perturb` delegates to `perturb_with(MoveMix::uniform())`; a zero
        // bias must not draw the locality coin, so two RNGs with the same
        // seed stay in lockstep whichever entry point drives them.
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let mut a = Candidate::random(10, &mut rng_a);
        let mut b = Candidate::random(10, &mut rng_b);
        let mix = MoveMix::uniform();
        for _ in 0..300 {
            let ua = a.perturb(&mut rng_a);
            let ub = b.perturb_with(&mix, &mut rng_b);
            assert_eq!(ua, ub);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn fully_local_mix_only_swaps_neighbours() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut c = Candidate::random(16, &mut rng);
        let mix = MoveMix::local(1.0);
        let mut saw_swap = false;
        for _ in 0..400 {
            match c.perturb_with(&mix, &mut rng) {
                PerturbUndo::SwapPositive(i, j) | PerturbUndo::SwapNegative(i, j) => {
                    assert_eq!(j, i + 1);
                    saw_swap = true;
                }
                PerturbUndo::SwapBoth { positive, negative } => {
                    assert_eq!(positive.1, positive.0 + 1);
                    assert_eq!(negative.1, negative.0 + 1);
                    saw_swap = true;
                }
                PerturbUndo::Shape { .. } | PerturbUndo::Noop => {}
            }
        }
        assert!(saw_swap, "walk never proposed a swap move");
        let mut pos = c.positive.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn move_mix_clamps_bias() {
        assert_eq!(MoveMix::local(7.0).locality_bias, 1.0);
        assert_eq!(MoveMix::local(-3.0).locality_bias, 0.0);
        assert_eq!(MoveMix::default(), MoveMix::uniform());
    }

    #[test]
    fn eval_pool_matches_serial_loop_at_every_worker_count() {
        let circuit = generators::bias9();
        let problem = Problem::new(&circuit);
        let mut rng = StdRng::seed_from_u64(0xE7A1);
        let mut generation: Vec<Candidate> = (0..17)
            .map(|_| Candidate::random(problem.num_blocks(), &mut rng))
            .collect();
        let mut cache = CostCache::new(&problem);
        for workers in [1usize, 2, 3, 4] {
            let mut pool = EvalPool::new(&problem, workers);
            assert_eq!(pool.workers(), workers);
            // Two generations per pool so the second batch runs on warm
            // per-worker caches — the steady state the optimizers live in.
            for _ in 0..2 {
                let serial: Vec<f64> = generation
                    .iter()
                    .map(|c| problem.cost_cached(c, &mut cache))
                    .collect();
                let batch = pool.evaluate(&problem, &generation);
                assert_eq!(batch, serial, "diverged at {workers} workers");
                for c in &mut generation {
                    let _ = c.perturb(&mut rng);
                }
            }
            assert!(pool.misses() > 0);
        }
    }

    #[test]
    fn eval_pool_auto_worker_count_is_positive() {
        let circuit = generators::ota3();
        let problem = Problem::new(&circuit);
        let pool = EvalPool::new(&problem, 0);
        assert!(pool.workers() >= 1);
    }

    #[test]
    fn eval_pool_evaluate_one_matches_cost() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let mut pool = EvalPool::new(&problem, 2);
        let c = Candidate::identity(problem.num_blocks(), problem.shape_sets());
        assert_eq!(pool.evaluate_one(&problem, &c), problem.cost(&c));
        // The repeat is a memo hit on worker 0.
        assert_eq!(pool.evaluate_one(&problem, &c), problem.cost(&c));
        assert!(pool.hits() >= 1);
    }

    #[test]
    fn undo_reverts_any_perturbation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut c = Candidate::random(12, &mut rng);
        let reference = c.clone();
        for _ in 0..200 {
            let token = c.perturb(&mut rng);
            c.undo(token);
            assert_eq!(c, reference);
        }
    }

    #[test]
    fn cost_cached_matches_cost() {
        let circuit = generators::ota8();
        let problem = Problem::new(&circuit);
        let mut cache = CostCache::new(&problem);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let c = Candidate::random(problem.num_blocks(), &mut rng);
            let direct = problem.cost(&c);
            let cached = problem.cost_cached(&c, &mut cache);
            assert_eq!(direct, cached);
            // Second lookup is a memo hit with the identical value.
            assert_eq!(problem.cost_cached(&c, &mut cache), direct);
        }
        assert!(cache.hits >= 20, "repeat evaluations should hit the memo");
        assert!(cache.misses >= 1);
    }

    #[test]
    fn shapes_for_into_matches_shapes_for() {
        let circuit = generators::bias9();
        let problem = Problem::new(&circuit);
        let mut rng = StdRng::seed_from_u64(5);
        let c = Candidate::random(problem.num_blocks(), &mut rng);
        let mut buffer = Vec::new();
        problem.shapes_for_into(&c, &mut buffer);
        assert_eq!(buffer, problem.shapes_for(&c));
    }

    #[test]
    fn incremental_cost_matches_full_along_sa_walk() {
        // The guarantee SA/GA/PSO rely on: along a realistic perturb/undo
        // walk, every incremental layer combination (dirty-block realization
        // × dirty-set metrics) returns bit-identical costs to the always-full
        // oracle path, while actually hitting.
        let circuit = generators::bias19();
        let problem = Problem::new(&circuit);
        let mut incremental = CostCache::new(&problem);
        incremental.set_incremental(true);
        incremental.set_incremental_metrics(true);
        let mut inc_realize_only = CostCache::new(&problem);
        inc_realize_only.set_incremental(true);
        inc_realize_only.set_incremental_metrics(false);
        let mut full = CostCache::new(&problem);
        full.set_incremental(false);
        full.set_incremental_metrics(false);
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        let mut c = Candidate::random(problem.num_blocks(), &mut rng);
        for step in 0..600 {
            let undo = c.perturb(&mut rng);
            let a = problem.cost_cached(&c, &mut incremental);
            let b = problem.cost_cached(&c, &mut full);
            let m = problem.cost_cached(&c, &mut inc_realize_only);
            assert_eq!(a, b, "cost diverged at step {step}");
            assert_eq!(a, m, "metrics-path cost diverged at step {step}");
            assert_eq!(a, problem.cost(&c), "cached cost diverged at step {step}");
            // Reject about half the moves, as SA would.
            if step % 2 == 0 {
                c.undo(undo);
            }
        }
        let stats = incremental.realize_stats();
        assert!(stats.hit_rate() > 0.0, "incremental engine never hit");
        assert!(
            stats.pack_stats().replay_rate() > 0.0,
            "incremental pack never replayed"
        );
        assert_eq!(full.realize_stats().episodes, 0, "oracle path must bypass the engine");
    }

    #[test]
    fn metrics_path_can_be_toggled_mid_run() {
        // Switching between the incremental and full metrics paths on a warm
        // cache must stay bit-identical: the full path does not maintain the
        // term state (and its penalty gate can skip the center fill
        // entirely), so `cost_cached` invalidates it explicitly. Run on
        // circuits that mix feasible and penalized episodes — on a
        // penalty-only walk both paths return the constant penalty and a
        // stale-term bug would be invisible.
        for circuit in [generators::ota3(), generators::ota8(), generators::bias19()] {
            let problem = Problem::new(&circuit);
            let mut cache = CostCache::new(&problem);
            cache.set_incremental(true);
            let mut rng = StdRng::seed_from_u64(0x706);
            let mut c = Candidate::random(problem.num_blocks(), &mut rng);
            let mut feasible = 0u32;
            for step in 0..200 {
                let _ = c.perturb(&mut rng);
                cache.set_incremental_metrics(step % 3 != 2);
                let cost = problem.cost_cached(&c, &mut cache);
                assert_eq!(
                    cost,
                    problem.cost(&c),
                    "toggled cost diverged at step {step} on {}",
                    circuit.name
                );
                feasible += (cost < 49.0) as u32;
            }
            if circuit.num_blocks() <= 5 {
                assert!(feasible > 0, "walk never feasible: the toggle test is vacuous");
            }
        }
    }

    #[test]
    fn realize_places_all_blocks() {
        let circuit = generators::bias9();
        let problem = Problem::new(&circuit);
        let mut rng = StdRng::seed_from_u64(3);
        let c = Candidate::random(problem.num_blocks(), &mut rng);
        let fp = problem.realize(&c);
        assert_eq!(fp.num_placed(), circuit.num_blocks());
    }

    #[test]
    fn grid_side_tracks_block_count() {
        // Paper-class circuits keep the historical 32×32 grid bit-identical;
        // larger circuits get the next 32-multiple ≥ 4·√n, capped at 128.
        for n in [1, 19, 64] {
            assert_eq!(grid_side_for(n), afp_layout::GRID_SIZE, "n = {n}");
        }
        assert_eq!(grid_side_for(65), 64);
        assert_eq!(grid_side_for(200), 64);
        assert_eq!(grid_side_for(256), 64);
        assert_eq!(grid_side_for(257), 96);
        assert_eq!(grid_side_for(500), 96);
        assert_eq!(grid_side_for(1000), 128);
        assert_eq!(grid_side_for(10_000), 128, "cap holds");
    }

    /// A deterministic large chain circuit (no constraints — feasible
    /// episodes exercise the HPWL term cache, not just the penalty gate).
    fn chain_circuit(n: usize) -> afp_circuit::Circuit {
        use afp_circuit::{BlockKind, NetClass};
        let mut rng = StdRng::seed_from_u64(0xC0DE ^ n as u64);
        let names: Vec<String> = (0..n).map(|i| format!("B{i}")).collect();
        let mut builder = afp_circuit::Circuit::builder(format!("chain-{n}"));
        for name in &names {
            builder = builder.block(name, BlockKind::CurrentMirror, rng.gen_range(4.0..40.0), 3);
        }
        for w in names.windows(2) {
            builder = builder.net(
                &format!("n_{}_{}", &w[0], &w[1]),
                &[(w[0].as_str(), "d"), (w[1].as_str(), "s")],
                NetClass::Signal,
            );
        }
        builder.build().expect("chain circuit is valid")
    }

    #[test]
    fn large_n_cost_pipeline_runs_incrementally_with_zero_fallbacks() {
        // 200 blocks: the incremental realize + metrics pipeline must stay
        // active (and bit-identical to the uncached cost) past every old
        // 64-element ceiling, with the fallback tripwire reading zero.
        let circuit = chain_circuit(200);
        let problem = Problem::new(&circuit);
        assert_eq!(problem.grid_side, 64, "200 blocks realize on a 64×64 grid");
        let mut cache = CostCache::new(&problem);
        let mut rng = StdRng::seed_from_u64(0x1A26);
        let mut c = Candidate::random(problem.num_blocks(), &mut rng);
        for step in 0..40 {
            let undo = c.perturb(&mut rng);
            assert_eq!(
                problem.cost_cached(&c, &mut cache),
                problem.cost(&c),
                "large-n cached cost diverged at step {step}"
            );
            if step % 2 == 0 {
                c.undo(undo);
            }
        }
        // Under the `full-realize` oracle feature every realization is
        // deliberately full, so incremental episodes legitimately stay 0.
        if cfg!(not(feature = "full-realize")) {
            assert!(cache.realize_stats().episodes > 0);
        }
        assert_eq!(cache.fallback_rescans(), 0, "incremental metrics fell back");

        let mut pool = EvalPool::new(&problem, 2);
        let generation: Vec<Candidate> = (0..6)
            .map(|_| Candidate::random(problem.num_blocks(), &mut rng))
            .collect();
        let costs = pool.evaluate(&problem, &generation);
        for (candidate, &cost) in generation.iter().zip(&costs) {
            assert_eq!(cost, problem.cost(candidate), "pool diverged at 200 blocks");
        }
        assert_eq!(pool.fallback_rescans(), 0);
    }
}

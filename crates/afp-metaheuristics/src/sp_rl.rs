//! Sequence-pair reinforcement-learning baseline ("RL" column of Table I).
//!
//! This reimplements, in simplified form, the pure-RL floorplanner of the
//! paper's predecessor [13]: an agent is trained *per instance* with a
//! policy-gradient method to transform a sequence pair through local moves.
//! Because every circuit is optimized from scratch, runtimes are one to two
//! orders of magnitude above SA — exactly the behaviour the paper's Table I
//! reports for the "RL [13]" column and the motivation for the transferable
//! R-GCN + PPO approach.
//!
//! The policy is a softmax over move types whose logits are updated with
//! REINFORCE using the per-episode improvement as the return. This captures
//! the per-instance-learning character of [13] without reproducing its full
//! network, which the paper does not specify in detail.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use afp_circuit::{Circuit, SHAPES_PER_BLOCK};

use crate::common::{
    candidate_is_feasible, BaselineResult, Candidate, EvalPool, Problem, RunControl, StopReason,
};

/// Number of move types the policy chooses between.
const NUM_MOVES: usize = 4;

/// Configuration of the per-instance sequence-pair RL baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SpRlConfig {
    /// Number of training episodes.
    pub episodes: usize,
    /// Number of moves applied per episode.
    pub moves_per_episode: usize,
    /// Policy-gradient learning rate.
    pub learning_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SpRlConfig {
    /// A configuration small enough for unit tests.
    pub fn small() -> Self {
        SpRlConfig {
            episodes: 20,
            moves_per_episode: 10,
            learning_rate: 0.1,
            seed: 0,
        }
    }

    /// Configuration used for the Table I reproduction. The episode budget is
    /// deliberately large so the per-instance-training runtime penalty of the
    /// method is visible, as in the paper.
    pub fn table1() -> Self {
        SpRlConfig {
            episodes: 300,
            moves_per_episode: 40,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

impl Default for SpRlConfig {
    fn default() -> Self {
        SpRlConfig::small()
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().copied().fold(f64::MIN, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.iter().map(|e| e / s).collect()
}

fn sample_move<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    let mut u: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

fn apply_move<R: Rng + ?Sized>(candidate: &mut Candidate, move_type: usize, rng: &mut R) {
    let n = candidate.positive.len();
    if n < 2 {
        return;
    }
    let pick = |rng: &mut R| {
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        while j == i {
            j = rng.gen_range(0..n);
        }
        (i, j)
    };
    match move_type {
        0 => {
            let (i, j) = pick(rng);
            candidate.positive.swap(i, j);
        }
        1 => {
            let (i, j) = pick(rng);
            candidate.negative.swap(i, j);
        }
        2 => {
            let (i, j) = pick(rng);
            candidate.positive.swap(i, j);
            candidate.negative.swap(i, j);
        }
        _ => {
            let b = rng.gen_range(0..n);
            candidate.shape_choice[b] = rng.gen_range(0..SHAPES_PER_BLOCK);
        }
    }
}

/// Runs the per-instance sequence-pair RL baseline on a circuit.
pub fn sequence_pair_rl(circuit: &Circuit, config: &SpRlConfig) -> BaselineResult {
    let problem = Problem::new(circuit);
    let (result, _) = sequence_pair_rl_on(&problem, config);
    result
}

/// Runs the baseline on an existing problem, returning both the result and the
/// best candidate found (used by the RL-SA hybrid to seed its SA stage).
pub fn sequence_pair_rl_on(problem: &Problem, config: &SpRlConfig) -> (BaselineResult, Candidate) {
    sequence_pair_rl_on_controlled(problem, config, &RunControl::unbounded())
}

/// [`sequence_pair_rl_on`] under a [`RunControl`]: polled once per episode
/// (episodes are tens of evaluations wide, so no stride gating is needed).
/// An interrupted run returns the best candidate seen so far with the
/// interrupting [`StopReason`]; polling draws nothing from the RNG, so an
/// uninterrupted controlled run is bit-identical to an uncontrolled one.
pub fn sequence_pair_rl_on_controlled(
    problem: &Problem,
    config: &SpRlConfig,
    control: &RunControl,
) -> (BaselineResult, Candidate) {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = problem.num_blocks();

    // The REINFORCE recurrence only ever exposes one candidate at a time
    // (the logits update needs each episode's end cost before the next
    // episode's moves are sampled), so SP-RL evaluates through the pool's
    // serial entry point: the pool owns the warm cache stack like it does
    // for GA/PSO, but no batch wider than one exists to fan out — and a
    // 2-item batch would never amortize a thread spawn (docs/TUNING.md).
    let mut pool = EvalPool::new(problem, 1);
    let mut logits = vec![0.0f64; NUM_MOVES];
    let mut best = Candidate::identity(n, problem.shape_sets());
    let mut best_cost = pool.evaluate_one(problem, &best);
    let mut evaluations = 1;
    let mut baseline_return = 0.0f64;
    let mut stop = StopReason::Completed;

    if let Some(reason) = episode_stop(problem, control, &best, evaluations) {
        let result = BaselineResult::from_candidate("RL (SP)", problem, &best, started, evaluations)
            .with_stop(reason);
        return (result, best);
    }

    for episode in 0..config.episodes {
        let mut candidate = if episode % 4 == 0 {
            Candidate::random(n, &mut rng)
        } else {
            best.clone()
        };
        let start_cost = pool.evaluate_one(problem, &candidate);
        evaluations += 1;
        let mut chosen_moves = Vec::with_capacity(config.moves_per_episode);
        for _ in 0..config.moves_per_episode {
            let probs = softmax(&logits);
            let mv = sample_move(&probs, &mut rng);
            chosen_moves.push(mv);
            apply_move(&mut candidate, mv, &mut rng);
        }
        let end_cost = pool.evaluate_one(problem, &candidate);
        evaluations += 1;
        if end_cost < best_cost {
            best_cost = end_cost;
            best = candidate;
        }
        // Episode return: the cost improvement achieved by the move sequence.
        let episode_return = start_cost - end_cost;
        baseline_return = 0.9 * baseline_return + 0.1 * episode_return;
        let advantage = episode_return - baseline_return;
        // REINFORCE update on the move-type distribution.
        let probs = softmax(&logits);
        for &mv in &chosen_moves {
            for (k, logit) in logits.iter_mut().enumerate() {
                let indicator = if k == mv { 1.0 } else { 0.0 };
                *logit += config.learning_rate * advantage * (indicator - probs[k]);
            }
        }
        // Control poll at the episode boundary, after the policy update and
        // before the next episode samples from the RNG.
        if let Some(reason) = episode_stop(problem, control, &best, evaluations) {
            stop = reason;
            break;
        }
    }

    let result = BaselineResult::from_candidate("RL (SP)", problem, &best, started, evaluations)
        .with_stop(stop);
    (result, best)
}

/// The per-episode control check: budget/cancel/deadline first, then the
/// first-feasible race predicate on the best candidate so far.
fn episode_stop(
    problem: &Problem,
    control: &RunControl,
    best: &Candidate,
    evaluations: usize,
) -> Option<StopReason> {
    if let Some(reason) = control.poll_now(evaluations as u64) {
        return Some(reason);
    }
    if control.stop_on_first_feasible() && candidate_is_feasible(problem, best) {
        control.cancel();
        return Some(StopReason::FirstFeasible);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[0.0, 1.0, -1.0, 2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn moves_preserve_permutations() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Candidate::random(8, &mut rng);
        for mv in 0..NUM_MOVES {
            apply_move(&mut c, mv, &mut rng);
        }
        let mut p = c.positive.clone();
        p.sort_unstable();
        assert_eq!(p, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sp_rl_runs_and_places_everything() {
        let circuit = generators::ota5();
        let result = sequence_pair_rl(&circuit, &SpRlConfig::small());
        assert_eq!(result.floorplan.num_placed(), circuit.num_blocks());
        assert!(result.reward.is_finite());
        assert_eq!(result.algorithm, "RL (SP)");
    }

    #[test]
    fn sp_rl_is_deterministic_per_seed() {
        let circuit = generators::ota3();
        let a = sequence_pair_rl(&circuit, &SpRlConfig::small());
        let b = sequence_pair_rl(&circuit, &SpRlConfig::small());
        assert_eq!(a.reward, b.reward);
    }

    #[test]
    fn sp_rl_improves_with_more_episodes() {
        let circuit = generators::ota5();
        let short = sequence_pair_rl(
            &circuit,
            &SpRlConfig {
                episodes: 2,
                ..SpRlConfig::small()
            },
        );
        let long = sequence_pair_rl(
            &circuit,
            &SpRlConfig {
                episodes: 60,
                ..SpRlConfig::small()
            },
        );
        assert!(long.reward >= short.reward - 1e-9);
    }
}

//! Hybrid curriculum learning (HCL) schedule (paper §IV-D5, after [26]).
//!
//! The agent is trained on circuits of increasing complexity. For each base
//! circuit, the first half of its episode budget uses the circuit unchanged;
//! in the second half, a new randomized circuit instance is sampled with
//! probability `p_circuit` and an extra positional constraint is injected with
//! probability `p_constraint`, which keeps the agent exposed to diverse
//! scenarios and prevents catastrophic forgetting.

use rand::Rng;

use afp_circuit::{generators, Axis, BlockId, Circuit, Constraint, SymmetryGroup};

/// The HCL schedule over a list of base circuits.
#[derive(Debug, Clone)]
pub struct HclSchedule {
    circuits: Vec<Circuit>,
    episodes_per_circuit: usize,
    /// Probability of replacing the base circuit with a random variant in the
    /// sampling phase (0.5 in the paper).
    pub p_circuit: f64,
    /// Probability of injecting an extra constraint in the sampling phase
    /// (0.3 in the paper).
    pub p_constraint: f64,
    episode: usize,
}

impl HclSchedule {
    /// Creates a schedule. `circuits` should be ordered by increasing
    /// complexity (the paper trains on 3-, 3-, 5-, 8- and 9-block circuits).
    pub fn new(circuits: Vec<Circuit>, episodes_per_circuit: usize) -> Self {
        assert!(!circuits.is_empty(), "curriculum needs at least one circuit");
        HclSchedule {
            circuits,
            episodes_per_circuit: episodes_per_circuit.max(1),
            p_circuit: 0.5,
            p_constraint: 0.3,
            episode: 0,
        }
    }

    /// Total number of episodes in the schedule.
    pub fn total_episodes(&self) -> usize {
        self.circuits.len() * self.episodes_per_circuit
    }

    /// Number of episodes already issued.
    pub fn episodes_issued(&self) -> usize {
        self.episode
    }

    /// Whether every scheduled episode has been issued.
    pub fn is_finished(&self) -> bool {
        self.episode >= self.total_episodes()
    }

    /// Index of the base circuit the current episode belongs to.
    pub fn current_stage(&self) -> usize {
        (self.episode / self.episodes_per_circuit).min(self.circuits.len() - 1)
    }

    /// The base circuits of the curriculum.
    pub fn circuits(&self) -> &[Circuit] {
        &self.circuits
    }

    /// Returns the circuit to use for the next episode and advances the
    /// schedule. Returns `None` once the schedule is exhausted.
    pub fn next_episode<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Circuit> {
        if self.is_finished() {
            return None;
        }
        let stage = self.current_stage();
        let within = self.episode % self.episodes_per_circuit;
        self.episode += 1;
        let base = &self.circuits[stage];
        // First half of each stage: the base circuit, unchanged.
        if within < self.episodes_per_circuit / 2 {
            return Some(base.clone());
        }
        // Second half: random circuit / constraint sampling.
        let mut circuit = if rng.gen_bool(self.p_circuit) {
            generators::random_variant(base, 0.25, rng)
        } else {
            base.clone()
        };
        if rng.gen_bool(self.p_constraint) {
            inject_random_constraint(&mut circuit, rng);
        }
        Some(circuit)
    }
}

/// Adds a random symmetry or alignment constraint between two unconstrained
/// blocks of similar area, if such a pair exists.
pub fn inject_random_constraint<R: Rng + ?Sized>(circuit: &mut Circuit, rng: &mut R) {
    let constrained: Vec<BlockId> = circuit
        .constraints
        .iter()
        .flat_map(|c| c.members())
        .collect();
    let free: Vec<BlockId> = circuit
        .blocks
        .iter()
        .map(|b| b.id)
        .filter(|id| !constrained.contains(id))
        .collect();
    if free.len() < 2 {
        return;
    }
    let a = free[rng.gen_range(0..free.len())];
    let mut b = free[rng.gen_range(0..free.len())];
    while b == a {
        b = free[rng.gen_range(0..free.len())];
    }
    let axis = if rng.gen_bool(0.5) {
        Axis::Vertical
    } else {
        Axis::Horizontal
    };
    if rng.gen_bool(0.5) {
        circuit
            .constraints
            .push(Constraint::Symmetry(SymmetryGroup::new(axis).with_pair(a, b)));
    } else {
        circuit.constraints.push(Constraint::Alignment(
            afp_circuit::AlignmentGroup::new(axis, vec![a, b]),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schedule() -> HclSchedule {
        HclSchedule::new(vec![generators::ota3(), generators::ota5()], 8)
    }

    #[test]
    fn schedule_counts_episodes() {
        let mut s = schedule();
        assert_eq!(s.total_episodes(), 16);
        let mut rng = StdRng::seed_from_u64(0);
        let mut issued = 0;
        while s.next_episode(&mut rng).is_some() {
            issued += 1;
        }
        assert_eq!(issued, 16);
        assert!(s.is_finished());
    }

    #[test]
    fn first_half_of_each_stage_is_the_base_circuit() {
        let mut s = schedule();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4 {
            let c = s.next_episode(&mut rng).unwrap();
            assert_eq!(c, generators::ota3());
        }
    }

    #[test]
    fn stages_progress_in_order() {
        let mut s = schedule();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..8 {
            s.next_episode(&mut rng).unwrap();
        }
        assert_eq!(s.current_stage(), 1);
        let c = s.next_episode(&mut rng).unwrap();
        assert_eq!(c.num_blocks(), 5);
    }

    #[test]
    fn sampling_phase_can_produce_variants() {
        let mut s = HclSchedule::new(vec![generators::ota3()], 40);
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_variant = false;
        while let Some(c) = s.next_episode(&mut rng) {
            if c != generators::ota3() {
                saw_variant = true;
            }
        }
        assert!(saw_variant, "sampling phase never produced a variant");
    }

    #[test]
    fn inject_constraint_adds_at_most_one() {
        let mut circuit = generators::oscillator();
        assert!(circuit.constraints.is_empty());
        let mut rng = StdRng::seed_from_u64(4);
        inject_random_constraint(&mut circuit, &mut rng);
        assert_eq!(circuit.constraints.len(), 1);
        circuit.validate().unwrap();
    }
}

//! The floorplanning agent: frozen R-GCN encoder + actor-critic policy.
//!
//! The agent covers the inference-time behaviours evaluated in Table I:
//! zero-shot floorplanning of a (possibly unseen) circuit, and few-shot
//! fine-tuning where training continues on one specific circuit for a given
//! number of episodes (1-shot, 100-shot, 1000-shot columns).

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use afp_circuit::{Circuit, CircuitGraph, NODE_FEATURE_DIM};
use afp_gnn::{CircuitEmbedding, RgcnEncoder};
use afp_layout::{metrics, Floorplan, FloorplanMetrics};
use afp_tensor::Tensor;

use crate::action::Action;
use crate::env::{FloorplanEnv, Termination};
use crate::policy::{ActorCritic, PolicyConfig};
use crate::ppo::{greedy_masked_action, sample_masked_action, PpoConfig, PpoTrainer};
use crate::rollout::{RolloutBuffer, Transition};

/// Feature-ablation switches (used by the ablation study binaries; all `true`
/// for the full method).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationFlags {
    /// Feed the dead-space mask `f_ds` to the CNN (paper's addition over \[4\]).
    pub use_dead_space_mask: bool,
    /// Feed the wire mask `f_w` to the CNN.
    pub use_wire_mask: bool,
    /// Use the R-GCN embeddings (otherwise zero vectors are fed).
    pub use_encoder: bool,
}

impl Default for AblationFlags {
    fn default() -> Self {
        AblationFlags {
            use_dead_space_mask: true,
            use_wire_mask: true,
            use_encoder: true,
        }
    }
}

/// Agent configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentConfig {
    /// Actor-critic architecture.
    pub policy: PolicyConfig,
    /// PPO hyper-parameters (used for fine-tuning and training).
    pub ppo: PpoConfig,
    /// Feature ablations.
    pub ablation: AblationFlags,
    /// RNG seed for weight initialization and sampling.
    pub seed: u64,
}

impl AgentConfig {
    /// Small configuration for tests.
    pub fn small() -> Self {
        AgentConfig {
            policy: PolicyConfig::small(),
            ppo: PpoConfig::small(),
            ablation: AblationFlags::default(),
            seed: 0,
        }
    }

    /// The paper's configuration.
    pub fn paper() -> Self {
        AgentConfig {
            policy: PolicyConfig::paper(),
            ppo: PpoConfig::paper(),
            ablation: AblationFlags::default(),
            seed: 0,
        }
    }
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig::small()
    }
}

/// Summary of one rollout episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeSummary {
    /// Sum of all rewards collected during the episode.
    pub total_reward: f64,
    /// Terminal reward (Eq. 5) of the final floorplan.
    pub final_reward: f64,
    /// How the episode ended.
    pub termination: Termination,
    /// Number of blocks placed.
    pub steps: usize,
}

/// Result of solving one circuit at inference time.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The produced floorplan.
    pub floorplan: Floorplan,
    /// Its metrics.
    pub metrics: FloorplanMetrics,
    /// Its episode reward (Eq. 5).
    pub reward: f64,
    /// Wall-clock inference time in seconds.
    pub runtime_s: f64,
    /// How the episode ended.
    pub termination: Termination,
}

/// The R-GCN + PPO floorplanning agent.
#[derive(Debug)]
pub struct FloorplanAgent {
    encoder: RgcnEncoder,
    policy: ActorCritic,
    config: AgentConfig,
    embedding_cache: HashMap<String, CircuitEmbedding>,
}

impl FloorplanAgent {
    /// Stochastic fallback rollouts [`Self::solve`] may spend when the greedy
    /// rollout dead-ends before placing every block.
    pub const SOLVE_RETRY_ROLLOUTS: usize = 16;

    /// Creates an agent with a freshly initialized (untrained) encoder.
    pub fn new(config: AgentConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let encoder = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
        let policy = ActorCritic::new(config.policy.clone(), &mut rng);
        FloorplanAgent {
            encoder,
            policy,
            config,
            embedding_cache: HashMap::new(),
        }
    }

    /// Creates an agent that reuses a pre-trained R-GCN encoder — the transfer
    /// step of the paper (§IV-D).
    pub fn with_encoder(encoder: RgcnEncoder, config: AgentConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let policy = ActorCritic::new(config.policy.clone(), &mut rng);
        FloorplanAgent {
            encoder,
            policy,
            config,
            embedding_cache: HashMap::new(),
        }
    }

    /// The agent configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The actor-critic policy (e.g. for checkpointing).
    pub fn policy(&self) -> &ActorCritic {
        &self.policy
    }

    /// Mutable access to the policy (used by the training loop).
    pub fn policy_mut(&mut self) -> &mut ActorCritic {
        &mut self.policy
    }

    /// The (frozen) encoder.
    pub fn encoder(&self) -> &RgcnEncoder {
        &self.encoder
    }

    /// Encodes a circuit graph, caching by circuit name (the encoder is frozen
    /// during RL, so embeddings never change for a given circuit).
    pub fn embed(&mut self, name: &str, graph: &CircuitGraph) -> CircuitEmbedding {
        if let Some(hit) = self.embedding_cache.get(name) {
            return hit.clone();
        }
        let embedding = if self.config.ablation.use_encoder {
            self.encoder.encode(graph)
        } else {
            CircuitEmbedding {
                node_embeddings: Tensor::zeros(&[graph.num_nodes(), afp_gnn::EMBEDDING_DIM]),
                graph_embedding: Tensor::zeros(&[afp_gnn::EMBEDDING_DIM]),
            }
        };
        self.embedding_cache.insert(name.to_string(), embedding.clone());
        embedding
    }

    /// Clears the embedding cache (needed after fine-tuning the encoder).
    pub fn clear_embedding_cache(&mut self) {
        self.embedding_cache.clear();
    }

    /// Converts an observation into the mask tensor fed to the CNN, applying
    /// the ablation switches.
    fn masks_tensor(&self, obs: &crate::env::Observation) -> Tensor {
        let mut data = obs.masks.to_tensor_data();
        let plane = afp_layout::GRID_SIZE * afp_layout::GRID_SIZE;
        if !self.config.ablation.use_wire_mask {
            for v in &mut data[plane..2 * plane] {
                *v = 0.0;
            }
        }
        if !self.config.ablation.use_dead_space_mask {
            for v in &mut data[2 * plane..3 * plane] {
                *v = 0.0;
            }
        }
        Tensor::from_vec(
            data,
            &[afp_layout::STATE_CHANNELS, afp_layout::GRID_SIZE, afp_layout::GRID_SIZE],
        )
    }

    /// Runs one episode on an environment.
    ///
    /// * `explore` — sample actions from the masked policy distribution
    ///   (training) instead of acting greedily (evaluation).
    /// * `buffer` — when provided, transitions are recorded for PPO.
    pub fn run_episode<R: Rng + ?Sized>(
        &mut self,
        env: &mut FloorplanEnv,
        explore: bool,
        mut buffer: Option<&mut RolloutBuffer>,
        rng: &mut R,
    ) -> EpisodeSummary {
        let circuit_name = env.circuit().name.clone();
        let graph = env.graph().clone();
        let embedding = self.embed(&circuit_name, &graph);
        let mut obs = match env.reset() {
            Some(o) => o,
            None => {
                return EpisodeSummary {
                    total_reward: 0.0,
                    final_reward: env.final_episode_reward(),
                    termination: Termination::Completed,
                    steps: 0,
                }
            }
        };
        let mut total_reward = 0.0;
        let mut steps = 0;
        loop {
            let masks = self.masks_tensor(&obs);
            let node_embedding = embedding.node(obs.node_index);
            let out = self
                .policy
                .forward(&masks, &embedding.graph_embedding, &node_embedding);
            let (action_index, log_prob) = if explore {
                sample_masked_action(&out.logits, &obs.action_mask, rng)
            } else {
                let a = greedy_masked_action(&out.logits, &obs.action_mask);
                let lp = crate::ppo::masked_log_softmax(&out.logits, &obs.action_mask).get(a);
                (a, lp)
            };
            let outcome = env.step(Action::from_index(action_index));
            total_reward += outcome.reward;
            steps += 1;
            if let Some(buf) = buffer.as_deref_mut() {
                buf.push(Transition {
                    masks,
                    graph_embedding: embedding.graph_embedding.clone(),
                    node_embedding,
                    action_mask: obs.action_mask.clone(),
                    action: action_index,
                    log_prob,
                    value: out.value,
                    reward: outcome.reward as f32,
                    done: outcome.done,
                });
            }
            if outcome.done {
                return EpisodeSummary {
                    total_reward,
                    final_reward: env.final_episode_reward(),
                    termination: outcome.termination,
                    steps,
                };
            }
            obs = env.observe().expect("episode not done");
        }
    }

    /// Zero-shot inference: floorplans a circuit with the current policy and
    /// reports the metrics Table I uses.
    ///
    /// The first rollout acts greedily. The constraint masks can drive a
    /// greedy rollout into a dead end on an unseen circuit (no admissible
    /// cell for the next block); in that case up to
    /// [`Self::SOLVE_RETRY_ROLLOUTS`] stochastic rollouts are attempted
    /// (deterministically seeded, so inference stays reproducible) and the
    /// best completed floorplan is returned. If every rollout fails, the most
    /// complete attempt is reported along with its termination cause.
    pub fn solve(&mut self, circuit: &Circuit) -> SolveResult {
        let started = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut best: Option<SolveResult> = None;
        for attempt in 0..=Self::SOLVE_RETRY_ROLLOUTS {
            let mut env = FloorplanEnv::new(circuit.clone());
            let explore = attempt > 0;
            let summary = self.run_episode(&mut env, explore, None, &mut rng);
            let m = metrics::metrics(circuit, env.floorplan());
            let candidate = SolveResult {
                floorplan: env.floorplan().clone(),
                metrics: m,
                reward: summary.final_reward,
                runtime_s: started.elapsed().as_secs_f64(),
                termination: summary.termination,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    let placed = candidate.floorplan.num_placed();
                    let best_placed = b.floorplan.num_placed();
                    placed > best_placed
                        || (placed == best_placed && candidate.reward > b.reward)
                }
            };
            if better {
                best = Some(candidate);
            }
            if summary.termination == Termination::Completed {
                break;
            }
        }
        let mut result = best.expect("at least one rollout attempted");
        result.runtime_s = started.elapsed().as_secs_f64();
        result
    }

    /// Few-shot fine-tuning: continues PPO training on a single circuit for
    /// `episodes` episodes (the 1-shot / 100-shot / 1000-shot protocol of
    /// Table I). Returns the terminal reward of each fine-tuning episode.
    pub fn fine_tune(&mut self, circuit: &Circuit, episodes: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(17));
        let mut trainer = PpoTrainer::new(self.config.ppo.clone());
        let mut env = FloorplanEnv::new(circuit.clone());
        let mut rewards = Vec::with_capacity(episodes);
        let mut buffer = RolloutBuffer::new(self.config.ppo.gamma, self.config.ppo.gae_lambda);
        // Update after every few episodes so even tiny budgets learn something.
        let episodes_per_update = 4usize;
        for episode in 0..episodes {
            let summary = self.run_episode(&mut env, true, Some(&mut buffer), &mut rng);
            rewards.push(summary.final_reward);
            if (episode + 1) % episodes_per_update == 0 || episode + 1 == episodes {
                let policy = &mut self.policy;
                trainer.update(policy, &buffer, &mut rng);
                buffer.clear();
            }
        }
        rewards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn untrained_agent_solves_a_circuit() {
        let mut agent = FloorplanAgent::new(AgentConfig::small());
        let circuit = generators::ota3();
        let result = agent.solve(&circuit);
        // Greedy masked rollout always produces a complete, overlap-free
        // floorplan (masking guarantees validity); quality is just poor.
        assert_eq!(result.floorplan.num_placed(), 3);
        assert!(result.reward.is_finite());
        assert!(result.runtime_s >= 0.0);
    }

    #[test]
    fn embeddings_are_cached_per_circuit() {
        let mut agent = FloorplanAgent::new(AgentConfig::small());
        let circuit = generators::ota5();
        let graph = CircuitGraph::from_circuit(&circuit);
        let a = agent.embed(&circuit.name, &graph);
        let b = agent.embed(&circuit.name, &graph);
        assert_eq!(a.graph_embedding.data(), b.graph_embedding.data());
        agent.clear_embedding_cache();
        let c = agent.embed(&circuit.name, &graph);
        assert_eq!(a.graph_embedding.data(), c.graph_embedding.data());
    }

    #[test]
    fn ablation_disables_encoder_embeddings() {
        let mut config = AgentConfig::small();
        config.ablation.use_encoder = false;
        let mut agent = FloorplanAgent::new(config);
        let circuit = generators::ota3();
        let graph = CircuitGraph::from_circuit(&circuit);
        let emb = agent.embed(&circuit.name, &graph);
        assert_eq!(emb.graph_embedding.norm(), 0.0);
    }

    #[test]
    fn exploration_episode_fills_buffer() {
        let mut agent = FloorplanAgent::new(AgentConfig::small());
        let mut env = FloorplanEnv::new(generators::ota3());
        let mut buffer = RolloutBuffer::new(0.99, 0.95);
        let mut rng = StdRng::seed_from_u64(0);
        let summary = agent.run_episode(&mut env, true, Some(&mut buffer), &mut rng);
        assert_eq!(buffer.len(), summary.steps);
        assert!(buffer.transitions().last().unwrap().done);
    }

    #[test]
    fn fine_tuning_runs_and_reports_rewards() {
        let mut agent = FloorplanAgent::new(AgentConfig::small());
        let circuit = generators::ota3();
        let rewards = agent.fine_tune(&circuit, 5);
        assert_eq!(rewards.len(), 5);
        assert!(rewards.iter().all(|r| r.is_finite()));
    }
}

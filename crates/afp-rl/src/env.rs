//! The floorplanning MDP environment (paper §IV-A).
//!
//! An episode places the blocks of one circuit in decreasing-area order. At
//! every step the agent observes the six grid masks plus the identity of the
//! current block; it selects a shape and a lower-left cell; the environment
//! returns the intermediate reward of Eq. 4 and, on the last step, adds the
//! terminal reward of Eq. 5. Selecting an invalid action (or reaching a state
//! where no action is admissible) ends the episode with the −50 penalty.

use afp_circuit::{shapes::shape_sets, BlockId, Circuit, CircuitGraph, ShapeSet};
use afp_layout::{
    constraints, masks::StateMasks, metrics, Canvas, Floorplan, FloorplanMetrics, RewardWeights,
};

use crate::action::{Action, ACTION_SPACE};

/// Why an episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The episode is still running.
    Running,
    /// All blocks were placed successfully.
    Completed,
    /// The agent selected an inadmissible action.
    InvalidAction,
    /// No admissible action existed for the current block.
    DeadEnd,
}

/// The observation handed to the agent at each step.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The six grid masks of the current state.
    pub masks: StateMasks,
    /// The block to be placed next.
    pub current_block: BlockId,
    /// Index of that block in the circuit graph (for the node embedding).
    pub node_index: usize,
    /// Flattened action mask over the full `3 × 32 × 32` action space:
    /// `1.0` for admissible actions, `0.0` otherwise.
    pub action_mask: Vec<f32>,
}

impl Observation {
    /// Number of admissible actions.
    pub fn num_valid_actions(&self) -> usize {
        self.action_mask.iter().filter(|&&v| v > 0.0).count()
    }
}

/// Result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// The reward collected at this step (intermediate + terminal if last).
    pub reward: f64,
    /// Whether the episode has ended.
    pub done: bool,
    /// How the episode ended (or [`Termination::Running`]).
    pub termination: Termination,
}

/// The floorplanning environment for one circuit.
#[derive(Debug, Clone)]
pub struct FloorplanEnv {
    circuit: Circuit,
    graph: CircuitGraph,
    shape_sets: Vec<ShapeSet>,
    canvas: Canvas,
    floorplan: Floorplan,
    order: Vec<BlockId>,
    step_index: usize,
    hpwl_min: f64,
    weights: RewardWeights,
    previous_metrics: FloorplanMetrics,
    termination: Termination,
    accumulated_reward: f64,
}

impl FloorplanEnv {
    /// Creates an environment for a circuit.
    pub fn new(circuit: Circuit) -> Self {
        let graph = CircuitGraph::from_circuit(&circuit);
        let shape_sets = shape_sets(&circuit);
        let canvas = Canvas::for_circuit(&circuit);
        let order = circuit.blocks_by_decreasing_area();
        let hpwl_min = metrics::hpwl_lower_bound(&circuit);
        FloorplanEnv {
            floorplan: Floorplan::new(canvas),
            previous_metrics: FloorplanMetrics::empty(),
            circuit,
            graph,
            shape_sets,
            canvas,
            order,
            step_index: 0,
            hpwl_min,
            weights: RewardWeights::default(),
            termination: Termination::Running,
            accumulated_reward: 0.0,
        }
    }

    /// The circuit being floorplanned.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The relational graph of the circuit (input to the R-GCN encoder).
    pub fn graph(&self) -> &CircuitGraph {
        &self.graph
    }

    /// The current (possibly partial) floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Episode length (number of blocks to place).
    pub fn episode_length(&self) -> usize {
        self.order.len()
    }

    /// Number of blocks placed so far.
    pub fn steps_taken(&self) -> usize {
        self.step_index
    }

    /// Whether the episode has ended.
    pub fn is_done(&self) -> bool {
        self.termination != Termination::Running
    }

    /// Total reward accumulated over the episode so far.
    pub fn accumulated_reward(&self) -> f64 {
        self.accumulated_reward
    }

    /// How the episode ended.
    pub fn termination(&self) -> Termination {
        self.termination
    }

    /// The `HPWL_min` normalization used by the rewards.
    pub fn hpwl_min(&self) -> f64 {
        self.hpwl_min
    }

    /// Resets the environment to an empty floorplan and returns the first
    /// observation (or `None` for a block-less circuit).
    pub fn reset(&mut self) -> Option<Observation> {
        self.floorplan = Floorplan::new(self.canvas);
        self.step_index = 0;
        self.previous_metrics = FloorplanMetrics::empty();
        self.termination = Termination::Running;
        self.accumulated_reward = 0.0;
        self.observe()
    }

    /// Builds the observation for the current step, or `None` if the episode
    /// has ended.
    pub fn observe(&self) -> Option<Observation> {
        if self.is_done() || self.step_index >= self.order.len() {
            return None;
        }
        let block = self.order[self.step_index];
        let shapes = &self.shape_sets[block.index()];
        let masks = StateMasks::build(&self.circuit, &self.floorplan, block, shapes);
        let mut action_mask = vec![0.0f32; ACTION_SPACE];
        for (shape_index, positional) in masks.positional.iter().enumerate() {
            let offset = shape_index * positional.len();
            action_mask[offset..offset + positional.len()].copy_from_slice(positional);
        }
        Some(Observation {
            masks,
            current_block: block,
            node_index: block.index(),
            action_mask,
        })
    }

    /// Applies an action for the current block.
    ///
    /// Invalid actions (masked-out cells, overlaps) terminate the episode with
    /// the violation penalty, mirroring the paper's constraint handling.
    pub fn step(&mut self, action: Action) -> StepOutcome {
        if self.is_done() || self.step_index >= self.order.len() {
            return StepOutcome {
                reward: 0.0,
                done: true,
                termination: self.termination,
            };
        }
        let block = self.order[self.step_index];
        let shapes = &self.shape_sets[block.index()];
        let shape = shapes.shape(action.shape_index.min(afp_circuit::SHAPES_PER_BLOCK - 1));

        // Check admissibility against the constraint-aware positional mask.
        let positional =
            afp_layout::masks::positional_mask(&self.circuit, &self.floorplan, block, &shape);
        if positional[action.cell.index()] == 0.0
            || self
                .floorplan
                .place(block, action.shape_index, shape, action.cell)
                .is_err()
        {
            self.termination = Termination::InvalidAction;
            self.accumulated_reward += self.weights.violation_penalty;
            return StepOutcome {
                reward: self.weights.violation_penalty,
                done: true,
                termination: self.termination,
            };
        }

        self.step_index += 1;
        let current_metrics = metrics::metrics(&self.circuit, &self.floorplan);
        let mut reward =
            metrics::intermediate_reward(&self.previous_metrics, &current_metrics, self.hpwl_min);
        self.previous_metrics = current_metrics;

        if self.step_index == self.order.len() {
            // Episode complete: add the terminal reward of Eq. 5.
            reward += metrics::episode_reward(
                &self.circuit,
                &self.floorplan,
                self.hpwl_min,
                &self.weights,
            );
            self.termination = Termination::Completed;
            self.accumulated_reward += reward;
            return StepOutcome {
                reward,
                done: true,
                termination: self.termination,
            };
        }

        // Detect dead ends for the next block (no admissible action at all).
        if let Some(next_obs) = self.observe() {
            if next_obs.num_valid_actions() == 0 {
                self.termination = Termination::DeadEnd;
                reward += self.weights.violation_penalty;
                self.accumulated_reward += reward;
                return StepOutcome {
                    reward,
                    done: true,
                    termination: self.termination,
                };
            }
        }

        self.accumulated_reward += reward;
        StepOutcome {
            reward,
            done: false,
            termination: Termination::Running,
        }
    }

    /// Final episode reward (Eq. 5) of the floorplan built so far — the metric
    /// Table I reports. Returns the violation penalty if the episode did not
    /// complete successfully.
    pub fn final_episode_reward(&self) -> f64 {
        metrics::episode_reward(&self.circuit, &self.floorplan, self.hpwl_min, &self.weights)
    }

    /// Number of constraint violations in the current floorplan.
    pub fn violations(&self) -> usize {
        constraints::count_violations(&self.circuit, &self.floorplan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use afp_layout::Cell;

    /// Picks the first admissible action of an observation.
    fn first_valid_action(obs: &Observation) -> Action {
        let idx = obs
            .action_mask
            .iter()
            .position(|&v| v > 0.0)
            .expect("at least one valid action");
        Action::from_index(idx)
    }

    #[test]
    fn episode_walks_through_all_blocks() {
        let mut env = FloorplanEnv::new(generators::ota5());
        let mut obs = env.reset().unwrap();
        let mut steps = 0;
        loop {
            let outcome = env.step(first_valid_action(&obs));
            steps += 1;
            if outcome.done {
                assert_eq!(outcome.termination, Termination::Completed);
                break;
            }
            obs = env.observe().unwrap();
        }
        assert_eq!(steps, 5);
        assert_eq!(env.floorplan().num_placed(), 5);
        assert!(env.final_episode_reward() > -50.0);
    }

    #[test]
    fn invalid_action_terminates_with_penalty() {
        let mut env = FloorplanEnv::new(generators::ota5());
        let obs = env.reset().unwrap();
        // Find a masked-out action.
        let invalid = obs
            .action_mask
            .iter()
            .position(|&v| v == 0.0)
            .expect("some invalid action exists");
        let outcome = env.step(Action::from_index(invalid));
        assert!(outcome.done);
        assert_eq!(outcome.termination, Termination::InvalidAction);
        assert_eq!(outcome.reward, -50.0);
    }

    #[test]
    fn observation_masks_have_expected_sizes() {
        let mut env = FloorplanEnv::new(generators::ota8());
        let obs = env.reset().unwrap();
        assert_eq!(obs.action_mask.len(), ACTION_SPACE);
        assert!(obs.num_valid_actions() > 0);
        assert_eq!(obs.masks.to_tensor_data().len(), 6 * 32 * 32);
        assert_eq!(env.episode_length(), 8);
    }

    #[test]
    fn largest_block_is_placed_first() {
        let circuit = generators::driver();
        let largest = circuit.blocks_by_decreasing_area()[0];
        let mut env = FloorplanEnv::new(circuit);
        let obs = env.reset().unwrap();
        assert_eq!(obs.current_block, largest);
    }

    #[test]
    fn reset_clears_state() {
        let mut env = FloorplanEnv::new(generators::ota3());
        let obs = env.reset().unwrap();
        env.step(first_valid_action(&obs));
        assert_eq!(env.steps_taken(), 1);
        env.reset().unwrap();
        assert_eq!(env.steps_taken(), 0);
        assert_eq!(env.floorplan().num_placed(), 0);
        assert!(!env.is_done());
    }

    #[test]
    fn intermediate_rewards_are_bounded() {
        let mut env = FloorplanEnv::new(generators::rs_latch());
        let mut obs = env.reset().unwrap();
        loop {
            // Always use a central-ish valid cell to avoid pathological spread.
            let outcome = env.step(first_valid_action(&obs));
            if !outcome.done {
                assert!(outcome.reward.abs() < 50.0);
                obs = env.observe().unwrap();
            } else {
                break;
            }
        }
    }

    #[test]
    fn step_after_done_is_a_noop() {
        let mut env = FloorplanEnv::new(generators::ota3());
        let obs = env.reset().unwrap();
        let bad = obs.action_mask.iter().position(|&v| v == 0.0).unwrap();
        env.step(Action::from_index(bad));
        assert!(env.is_done());
        let again = env.step(Action::new(0, Cell::new(0, 0)));
        assert!(again.done);
        assert_eq!(again.reward, 0.0);
    }
}

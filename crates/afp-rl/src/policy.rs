//! The actor-critic network of the RL agent (paper Fig. 4).
//!
//! * A CNN **state feature extractor** consumes the 6×32×32 mask tensor
//!   (3×3 kernels, stride 1, padding 1; 16-32-32-64-64 channels in the paper)
//!   followed by a dense projection to a 512-dimensional vector.
//! * The CNN features are concatenated with the R-GCN **graph** and **current
//!   node** embeddings (32 + 32) to form the state embedding.
//! * The **value network** is a small MLP on the state embedding.
//! * The **deconvolutional policy network** projects the state embedding back
//!   to a `[32, 4, 4]` activation and upsamples it with three 4×4 / stride-2
//!   transposed convolutions (32-16-8 channels) plus a 1×1 convolution to the
//!   three shape channels, producing one logit per `(shape, cell)` action.

use rand::Rng;

use afp_circuit::SHAPES_PER_BLOCK;
use afp_layout::{GRID_SIZE, STATE_CHANNELS};
use afp_tensor::layers::{Activation, Conv2d, ConvTranspose2d, Dense, Flatten, Reshape, Sequential};
use afp_tensor::{Layer, Param, StateDict, Tensor};

use crate::action::ACTION_SPACE;

/// Width of the R-GCN graph / node embeddings consumed by the policy.
pub const EMBEDDING_DIM: usize = afp_gnn::EMBEDDING_DIM;

/// Architecture hyper-parameters of the actor-critic network.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyConfig {
    /// Channel widths of the CNN feature extractor.
    pub conv_channels: Vec<usize>,
    /// Output width of the dense projection after the CNN.
    pub cnn_feature_dim: usize,
    /// Channel widths of the three deconvolution stages (first entry is also
    /// the channel count of the reshaped seed activation).
    pub deconv_channels: [usize; 3],
    /// Hidden width of the value MLP.
    pub value_hidden: usize,
}

impl PolicyConfig {
    /// The paper's architecture (§IV-D3).
    pub fn paper() -> Self {
        PolicyConfig {
            conv_channels: vec![16, 32, 32, 64, 64],
            cnn_feature_dim: 512,
            deconv_channels: [32, 16, 8],
            value_hidden: 256,
        }
    }

    /// A reduced architecture for CPU unit tests and fast experimentation.
    pub fn small() -> Self {
        PolicyConfig {
            conv_channels: vec![4],
            cnn_feature_dim: 32,
            deconv_channels: [8, 4, 4],
            value_hidden: 32,
        }
    }

    /// Dimension of the concatenated state embedding.
    pub fn state_dim(&self) -> usize {
        self.cnn_feature_dim + 2 * EMBEDDING_DIM
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig::small()
    }
}

/// Output of one policy evaluation.
#[derive(Debug, Clone)]
pub struct PolicyOutput {
    /// Unmasked logits over the flat action space (`[ACTION_SPACE]`).
    pub logits: Tensor,
    /// State-value estimate.
    pub value: f32,
}

/// The actor-critic network.
#[derive(Debug)]
pub struct ActorCritic {
    config: PolicyConfig,
    cnn: Sequential,
    policy_head: Sequential,
    value_head: Sequential,
}

impl ActorCritic {
    /// Creates the network with the given architecture.
    pub fn new<R: Rng + ?Sized>(config: PolicyConfig, rng: &mut R) -> Self {
        // CNN feature extractor.
        let mut cnn = Sequential::new();
        let mut in_ch = STATE_CHANNELS;
        for &out_ch in &config.conv_channels {
            cnn.push(Conv2d::new(in_ch, out_ch, 3, 1, 1, rng));
            cnn.push(Activation::relu());
            in_ch = out_ch;
        }
        cnn.push(Flatten::new());
        let flat_dim = in_ch * GRID_SIZE * GRID_SIZE;
        cnn.push(Dense::new(flat_dim, config.cnn_feature_dim, rng));
        cnn.push(Activation::relu());

        let state_dim = config.state_dim();

        // Deconvolutional policy head.
        let mut policy_head = Sequential::new();
        let seed_channels = config.deconv_channels[0];
        policy_head.push(Dense::new(state_dim, seed_channels * 4 * 4, rng));
        policy_head.push(Activation::relu());
        policy_head.push(Reshape::new(&[seed_channels, 4, 4]));
        policy_head.push(ConvTranspose2d::new(
            config.deconv_channels[0],
            config.deconv_channels[0],
            4,
            2,
            1,
            rng,
        ));
        policy_head.push(Activation::relu());
        policy_head.push(ConvTranspose2d::new(
            config.deconv_channels[0],
            config.deconv_channels[1],
            4,
            2,
            1,
            rng,
        ));
        policy_head.push(Activation::relu());
        policy_head.push(ConvTranspose2d::new(
            config.deconv_channels[1],
            config.deconv_channels[2],
            4,
            2,
            1,
            rng,
        ));
        policy_head.push(Activation::relu());
        // 1×1 convolution down to one channel per candidate shape.
        policy_head.push(Conv2d::new(
            config.deconv_channels[2],
            SHAPES_PER_BLOCK,
            1,
            1,
            0,
            rng,
        ));

        // Value head.
        let mut value_head = Sequential::new();
        value_head.push(Dense::new(state_dim, config.value_hidden, rng));
        value_head.push(Activation::relu());
        value_head.push(Dense::new(config.value_hidden, 1, rng));

        ActorCritic {
            config,
            cnn,
            policy_head,
            value_head,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// Evaluates the network.
    ///
    /// * `masks` — the `[6, 32, 32]` mask tensor of the observation,
    /// * `graph_embedding` — the 32-dimensional circuit embedding,
    /// * `node_embedding` — the 32-dimensional embedding of the block to place.
    pub fn forward(
        &mut self,
        masks: &Tensor,
        graph_embedding: &Tensor,
        node_embedding: &Tensor,
    ) -> PolicyOutput {
        assert_eq!(
            masks.shape(),
            &[STATE_CHANNELS, GRID_SIZE, GRID_SIZE],
            "mask tensor has wrong shape"
        );
        let cnn_features = self.cnn.forward(masks);
        let state = Tensor::concat(&[&cnn_features, graph_embedding, node_embedding]);
        let logits_map = self.policy_head.forward(&state);
        let logits = logits_map.reshape(&[ACTION_SPACE]);
        let value = self.value_head.forward(&state).get(0);
        PolicyOutput { logits, value }
    }

    /// Back-propagates gradients of the loss with respect to the logits and
    /// the value estimate of the **most recent** [`ActorCritic::forward`]
    /// call. Returns the gradient with respect to the concatenated
    /// `(graph, node)` embeddings (useful if the caller wants to fine-tune the
    /// encoder; discarded when the encoder is frozen).
    pub fn backward(&mut self, grad_logits: &Tensor, grad_value: f32) -> Tensor {
        let grad_map = grad_logits.reshape(&[SHAPES_PER_BLOCK, GRID_SIZE, GRID_SIZE]);
        let grad_state_from_policy = self.policy_head.backward(&grad_map);
        let grad_state_from_value = self
            .value_head
            .backward(&Tensor::from_slice(&[grad_value]));
        let grad_state = grad_state_from_policy.add(&grad_state_from_value);
        let split = self.config.cnn_feature_dim;
        let grad_cnn = Tensor::from_slice(&grad_state.data()[..split]);
        let grad_embeddings = Tensor::from_slice(&grad_state.data()[split..]);
        self.cnn.backward(&grad_cnn);
        grad_embeddings
    }

    /// All learnable parameters, mutably.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.cnn.params_mut();
        p.extend(self.policy_head.params_mut());
        p.extend(self.value_head.params_mut());
        p
    }

    /// All learnable parameters.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = self.cnn.params();
        p.extend(self.policy_head.params());
        p.extend(self.value_head.params());
        p
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.cnn.zero_grad();
        self.policy_head.zero_grad();
        self.value_head.zero_grad();
    }

    /// Total number of learnable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.num_elements()).sum()
    }

    /// Extracts all weights as a state dict.
    pub fn state_dict(&self) -> StateDict {
        let mut dict = StateDict::new();
        for (i, p) in self.params().iter().enumerate() {
            dict.insert(format!("{i}:{}", p.name), p.value.clone());
        }
        dict
    }

    /// Loads weights from a state dict produced by [`ActorCritic::state_dict`].
    ///
    /// # Errors
    ///
    /// Returns an error string if the parameter count or any shape differs.
    pub fn load_state_dict(&mut self, dict: &StateDict) -> Result<(), String> {
        let mut params = self.params_mut();
        if params.len() != dict.len() {
            return Err(format!(
                "policy has {} parameters, checkpoint has {}",
                params.len(),
                dict.len()
            ));
        }
        for (p, (_, value)) in params.iter_mut().zip(dict.iter()) {
            if p.value.shape() != value.shape() {
                return Err(format!(
                    "shape mismatch for {}: {:?} vs {:?}",
                    p.name,
                    p.value.shape(),
                    value.shape()
                ));
            }
            p.value = value.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn inputs(seed: u64) -> (Tensor, Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let masks = afp_tensor::Init::XavierUniform.sample(
            &mut rng,
            &[STATE_CHANNELS, GRID_SIZE, GRID_SIZE],
            10,
            10,
        );
        let g = afp_tensor::Init::XavierUniform.sample(&mut rng, &[EMBEDDING_DIM], 32, 32);
        let n = afp_tensor::Init::XavierUniform.sample(&mut rng, &[EMBEDDING_DIM], 32, 32);
        (masks, g, n)
    }

    #[test]
    fn forward_produces_full_action_space_logits() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = ActorCritic::new(PolicyConfig::small(), &mut rng);
        let (masks, g, n) = inputs(1);
        let out = net.forward(&masks, &g, &n);
        assert_eq!(out.logits.len(), ACTION_SPACE);
        assert!(out.logits.is_finite());
        assert!(out.value.is_finite());
    }

    #[test]
    fn paper_config_matches_described_architecture() {
        let cfg = PolicyConfig::paper();
        assert_eq!(cfg.conv_channels, vec![16, 32, 32, 64, 64]);
        assert_eq!(cfg.cnn_feature_dim, 512);
        assert_eq!(cfg.deconv_channels, [32, 16, 8]);
        assert_eq!(cfg.state_dim(), 512 + 64);
    }

    #[test]
    fn backward_populates_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = ActorCritic::new(PolicyConfig::small(), &mut rng);
        let (masks, g, n) = inputs(3);
        let out = net.forward(&masks, &g, &n);
        net.zero_grad();
        let grad_logits = out.logits.map(|_| 1.0 / ACTION_SPACE as f32);
        let grad_emb = net.backward(&grad_logits, 1.0);
        assert_eq!(grad_emb.len(), 2 * EMBEDDING_DIM);
        assert!(net.params().iter().any(|p| p.grad.norm() > 0.0));
    }

    #[test]
    fn state_dict_roundtrip_reproduces_outputs() {
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut net_a = ActorCritic::new(PolicyConfig::small(), &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut net_b = ActorCritic::new(PolicyConfig::small(), &mut rng_b);
        net_b.load_state_dict(&net_a.state_dict()).unwrap();
        let (masks, g, n) = inputs(5);
        let oa = net_a.forward(&masks, &g, &n);
        let ob = net_b.forward(&masks, &g, &n);
        assert_eq!(oa.logits.data(), ob.logits.data());
        assert_eq!(oa.value, ob.value);
    }

    #[test]
    fn load_rejects_architecture_mismatch() {
        let mut rng = StdRng::seed_from_u64(6);
        let net_small = ActorCritic::new(PolicyConfig::small(), &mut rng);
        let mut other = ActorCritic::new(
            PolicyConfig {
                conv_channels: vec![4, 4],
                ..PolicyConfig::small()
            },
            &mut rng,
        );
        assert!(other.load_state_dict(&net_small.state_dict()).is_err());
    }
}

//! # afp-rl — the R-GCN + masked-PPO floorplanning agent
//!
//! The paper's primary contribution (§IV-A, §IV-D): a reinforcement-learning
//! agent that jointly selects a shape and a grid position for every functional
//! block of an analog circuit, guided by R-GCN circuit embeddings and
//! pixel-level grid masks, trained with masked PPO under a hybrid curriculum.
//!
//! * [`FloorplanEnv`] — the placement MDP (states, 3×32×32 action space,
//!   Eq. 4 / Eq. 5 rewards, invalid-action termination),
//! * [`ActorCritic`] — CNN state feature extractor + deconvolutional policy
//!   head + value network (Fig. 4),
//! * [`PpoTrainer`] — masked Proximal Policy Optimization with GAE,
//! * [`HclSchedule`] — the hybrid curriculum over circuits of growing
//!   complexity with random circuit / constraint sampling (§IV-D5),
//! * [`FloorplanAgent`] — inference (zero-shot) and few-shot fine-tuning,
//! * [`train()`] — the end-to-end training loop recording the Fig. 6 curves,
//! * [`ablation`] — named ablations of the design choices.
//!
//! # Examples
//!
//! ```
//! use afp_circuit::generators;
//! use afp_rl::{AgentConfig, FloorplanAgent};
//!
//! // An untrained agent still produces valid (if suboptimal) floorplans,
//! // because invalid actions are masked out.
//! let mut agent = FloorplanAgent::new(AgentConfig::small());
//! let result = agent.solve(&generators::ota3());
//! assert_eq!(result.floorplan.num_placed(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod action;
mod agent;
mod curriculum;
mod env;
mod policy;
mod ppo;
mod rollout;

pub mod ablation;
pub mod train;

pub use action::{Action, ACTION_SPACE};
pub use agent::{
    AblationFlags, AgentConfig, EpisodeSummary, FloorplanAgent, SolveResult,
};
pub use curriculum::{inject_random_constraint, HclSchedule};
pub use env::{FloorplanEnv, Observation, StepOutcome, Termination};
pub use policy::{ActorCritic, PolicyConfig, PolicyOutput};
pub use ppo::{
    greedy_masked_action, masked_log_softmax, sample_masked_action, PpoConfig, PpoStats,
    PpoTrainer,
};
pub use rollout::{RolloutBuffer, Transition};
pub use train::{train, train_agent, train_with_encoder, EpochStats, TrainConfig, TrainResult};

//! Rollout storage and generalized advantage estimation.

use afp_tensor::Tensor;

/// One environment transition collected during a rollout.
#[derive(Debug, Clone)]
pub struct Transition {
    /// The `[6, 32, 32]` mask tensor observed.
    pub masks: Tensor,
    /// Graph embedding of the circuit.
    pub graph_embedding: Tensor,
    /// Node embedding of the block that was placed.
    pub node_embedding: Tensor,
    /// Flat action mask (1 = admissible).
    pub action_mask: Vec<f32>,
    /// The flat action index taken.
    pub action: usize,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f32,
    /// Value estimate of the behaviour policy.
    pub value: f32,
    /// Reward received after the action.
    pub reward: f32,
    /// Whether the episode ended after this transition.
    pub done: bool,
}

/// A buffer of transitions plus the discounting hyper-parameters needed to
/// turn them into advantages and returns.
#[derive(Debug)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE smoothing factor λ.
    pub gae_lambda: f32,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new(gamma: f32, gae_lambda: f32) -> Self {
        RolloutBuffer {
            transitions: Vec::new(),
            gamma,
            gae_lambda,
        }
    }

    /// Appends a transition.
    pub fn push(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Clears the buffer for the next rollout.
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// Read access to the stored transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Computes per-transition GAE advantages and discounted returns.
    ///
    /// Episodes are delimited by the `done` flag; the value after a terminal
    /// transition is treated as zero (every stored episode is complete, as the
    /// floorplanning MDP has a fixed horizon of one step per block).
    pub fn advantages_and_returns(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.transitions.len();
        let mut advantages = vec![0.0f32; n];
        let mut returns = vec![0.0f32; n];
        let mut next_value = 0.0f32;
        let mut next_advantage = 0.0f32;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            if t.done {
                next_value = 0.0;
                next_advantage = 0.0;
            }
            let delta = t.reward + self.gamma * next_value - t.value;
            let adv = delta + self.gamma * self.gae_lambda * next_advantage;
            advantages[i] = adv;
            returns[i] = adv + t.value;
            next_value = t.value;
            next_advantage = adv;
        }
        (advantages, returns)
    }

    /// Mean and standard deviation of the advantages (used to normalize them
    /// before the PPO update, as Stable-Baselines3 does).
    pub fn advantage_stats(advantages: &[f32]) -> (f32, f32) {
        if advantages.is_empty() {
            return (0.0, 1.0);
        }
        let mean = advantages.iter().sum::<f32>() / advantages.len() as f32;
        let var = advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / advantages.len() as f32;
        (mean, var.sqrt().max(1e-6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(reward: f32, value: f32, done: bool) -> Transition {
        Transition {
            masks: Tensor::zeros(&[1]),
            graph_embedding: Tensor::zeros(&[1]),
            node_embedding: Tensor::zeros(&[1]),
            action_mask: vec![1.0],
            action: 0,
            log_prob: 0.0,
            value,
            reward,
            done,
        }
    }

    #[test]
    fn single_step_episode_advantage_is_td_error() {
        let mut buf = RolloutBuffer::new(0.99, 0.95);
        buf.push(transition(2.0, 0.5, true));
        let (adv, ret) = buf.advantages_and_returns();
        assert!((adv[0] - 1.5).abs() < 1e-6);
        assert!((ret[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gae_discounts_across_steps() {
        let mut buf = RolloutBuffer::new(1.0, 1.0);
        // Two-step episode with zero value estimates: returns are plain sums.
        buf.push(transition(1.0, 0.0, false));
        buf.push(transition(2.0, 0.0, true));
        let (adv, ret) = buf.advantages_and_returns();
        assert!((ret[0] - 3.0).abs() < 1e-6);
        assert!((ret[1] - 2.0).abs() < 1e-6);
        assert!((adv[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn episodes_are_isolated_by_done_flags() {
        let mut buf = RolloutBuffer::new(0.9, 0.9);
        buf.push(transition(1.0, 0.0, true));
        buf.push(transition(5.0, 0.0, true));
        let (_, ret) = buf.advantages_and_returns();
        // The second episode's reward must not bleed into the first.
        assert!((ret[0] - 1.0).abs() < 1e-6);
        assert!((ret[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn advantage_stats_are_sane() {
        let (mean, std) = RolloutBuffer::advantage_stats(&[1.0, 3.0]);
        assert!((mean - 2.0).abs() < 1e-6);
        assert!((std - 1.0).abs() < 1e-6);
        let (m0, s0) = RolloutBuffer::advantage_stats(&[]);
        assert_eq!((m0, s0), (0.0, 1.0));
    }

    #[test]
    fn clear_resets_buffer() {
        let mut buf = RolloutBuffer::new(0.99, 0.95);
        buf.push(transition(1.0, 0.0, true));
        assert_eq!(buf.len(), 1);
        buf.clear();
        assert!(buf.is_empty());
    }
}

//! Named ablation configurations for the design choices called out in the
//! paper's method section (used by the `ablations` reproduction binary).

use crate::agent::{AblationFlags, AgentConfig};

/// One ablation of the full method.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// Human-readable name used in the ablation report.
    pub name: &'static str,
    /// What the ablation removes or changes.
    pub description: &'static str,
    /// Feature switches of the agent.
    pub flags: AblationFlags,
    /// Whether the hybrid curriculum is used (otherwise the agent trains on
    /// the target circuit only, from scratch).
    pub use_curriculum: bool,
}

/// The full method (no ablation), used as the reference row.
pub fn full_method() -> Ablation {
    Ablation {
        name: "full",
        description: "R-GCN embeddings + wire mask + dead-space mask + HCL curriculum",
        flags: AblationFlags::default(),
        use_curriculum: true,
    }
}

/// All ablations evaluated by the ablation study binary.
pub fn all() -> Vec<Ablation> {
    vec![
        full_method(),
        Ablation {
            name: "no-dead-space-mask",
            description: "remove the dead-space mask f_ds (reverting to the MaskPlace-style state of [4])",
            flags: AblationFlags {
                use_dead_space_mask: false,
                ..AblationFlags::default()
            },
            use_curriculum: true,
        },
        Ablation {
            name: "no-wire-mask",
            description: "remove the wire mask f_w",
            flags: AblationFlags {
                use_wire_mask: false,
                ..AblationFlags::default()
            },
            use_curriculum: true,
        },
        Ablation {
            name: "no-rgcn",
            description: "zero out the R-GCN circuit/block embeddings (pixel-only state)",
            flags: AblationFlags {
                use_encoder: false,
                ..AblationFlags::default()
            },
            use_curriculum: true,
        },
        Ablation {
            name: "no-curriculum",
            description: "train from scratch on the target circuit instead of the HCL schedule",
            flags: AblationFlags::default(),
            use_curriculum: false,
        },
    ]
}

/// Applies the ablation's feature switches to an agent configuration.
pub fn apply(ablation: &Ablation, mut config: AgentConfig) -> AgentConfig {
    config.ablation = ablation.flags;
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_list_contains_the_paper_design_choices() {
        let names: Vec<&str> = all().iter().map(|a| a.name).collect();
        assert!(names.contains(&"full"));
        assert!(names.contains(&"no-dead-space-mask"));
        assert!(names.contains(&"no-rgcn"));
        assert!(names.contains(&"no-curriculum"));
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn apply_sets_flags() {
        let ablation = all()
            .into_iter()
            .find(|a| a.name == "no-rgcn")
            .unwrap();
        let config = apply(&ablation, AgentConfig::small());
        assert!(!config.ablation.use_encoder);
        assert!(config.ablation.use_dead_space_mask);
    }

    #[test]
    fn full_method_enables_everything() {
        let f = full_method();
        assert!(f.flags.use_dead_space_mask && f.flags.use_wire_mask && f.flags.use_encoder);
        assert!(f.use_curriculum);
    }
}

//! Masked Proximal Policy Optimization.
//!
//! The agent is trained with PPO [24] extended with invalid-action masking
//! [25]: the positional masks of the observation zero out the probability of
//! actions that would overlap blocks or break constraints, both when sampling
//! during rollouts and when computing the surrogate objective during updates.

use rand::Rng;

use afp_tensor::optim::{clip_grad_norm, Adam};
use afp_tensor::{loss::categorical_entropy, Tensor};

use crate::policy::ActorCritic;
use crate::rollout::RolloutBuffer;

/// Logit value assigned to masked-out actions (effectively −∞).
const MASKED_LOGIT: f32 = -1.0e9;

/// Applies the action mask to raw logits: inadmissible actions get a huge
/// negative logit so their probability underflows to zero.
pub fn apply_mask(logits: &Tensor, mask: &[f32]) -> Tensor {
    assert_eq!(logits.len(), mask.len(), "mask / logit length mismatch");
    Tensor::from_vec(
        logits
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&l, &m)| if m > 0.0 { l } else { MASKED_LOGIT })
            .collect(),
        logits.shape(),
    )
}

/// Masked log-softmax over the action space.
pub fn masked_log_softmax(logits: &Tensor, mask: &[f32]) -> Tensor {
    apply_mask(logits, mask).log_softmax()
}

/// Samples an action from the masked categorical distribution, returning the
/// flat action index and its log-probability.
pub fn sample_masked_action<R: Rng + ?Sized>(
    logits: &Tensor,
    mask: &[f32],
    rng: &mut R,
) -> (usize, f32) {
    let log_probs = masked_log_softmax(logits, mask);
    let mut u: f32 = rng.gen();
    let mut chosen = None;
    for (i, &lp) in log_probs.data().iter().enumerate() {
        if mask[i] <= 0.0 {
            continue;
        }
        let p = lp.exp();
        if u < p {
            chosen = Some(i);
            break;
        }
        u -= p;
    }
    let index = chosen.unwrap_or_else(|| greedy_masked_action(logits, mask));
    (index, log_probs.get(index))
}

/// The highest-probability admissible action.
pub fn greedy_masked_action(logits: &Tensor, mask: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &l) in logits.data().iter().enumerate() {
        if mask[i] > 0.0 && l > best_v {
            best_v = l;
            best = i;
        }
    }
    best
}

/// PPO hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PpoConfig {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE smoothing λ.
    pub gae_lambda: f32,
    /// PPO clip range ε.
    pub clip_range: f32,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Number of optimization epochs per update.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch_size: usize,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl PpoConfig {
    /// Hyper-parameters small enough for unit tests.
    pub fn small() -> Self {
        PpoConfig {
            learning_rate: 3e-4,
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_range: 0.2,
            entropy_coef: 0.01,
            value_coef: 0.5,
            epochs: 2,
            minibatch_size: 8,
            max_grad_norm: 0.5,
        }
    }

    /// The Stable-Baselines3-style defaults used for the full training runs.
    pub fn paper() -> Self {
        PpoConfig {
            learning_rate: 3e-4,
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_range: 0.2,
            entropy_coef: 0.01,
            value_coef: 0.5,
            epochs: 6,
            minibatch_size: 64,
            max_grad_norm: 0.5,
        }
    }
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig::small()
    }
}

/// Diagnostics of one PPO update.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PpoStats {
    /// Mean clipped surrogate loss.
    pub policy_loss: f32,
    /// Mean value-function loss.
    pub value_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Mean approximate KL divergence between the behaviour and updated
    /// policies (the quantity plotted in the paper's Fig. 6).
    pub approx_kl: f32,
    /// Number of gradient steps applied.
    pub gradient_steps: usize,
}

/// Runs PPO updates on an [`ActorCritic`] from collected rollouts.
#[derive(Debug)]
pub struct PpoTrainer {
    /// Hyper-parameters.
    pub config: PpoConfig,
    optimizer: Adam,
}

impl PpoTrainer {
    /// Creates a trainer.
    pub fn new(config: PpoConfig) -> Self {
        let optimizer = Adam::new(config.learning_rate);
        PpoTrainer { config, optimizer }
    }

    /// Performs one PPO update over the buffer and returns diagnostics.
    pub fn update<R: Rng + ?Sized>(
        &mut self,
        policy: &mut ActorCritic,
        buffer: &RolloutBuffer,
        rng: &mut R,
    ) -> PpoStats {
        if buffer.is_empty() {
            return PpoStats::default();
        }
        let (advantages, returns) = buffer.advantages_and_returns();
        let (adv_mean, adv_std) = RolloutBuffer::advantage_stats(&advantages);
        let n = buffer.len();
        let mut stats = PpoStats::default();
        let mut samples_seen = 0usize;

        for _epoch in 0..self.config.epochs {
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(self.config.minibatch_size.max(1)) {
                policy.zero_grad();
                for &idx in chunk {
                    let t = &buffer.transitions()[idx];
                    let advantage = (advantages[idx] - adv_mean) / adv_std;
                    let target_return = returns[idx];

                    let out = policy.forward(&t.masks, &t.graph_embedding, &t.node_embedding);
                    let masked = apply_mask(&out.logits, &t.action_mask);
                    let log_probs = masked.log_softmax();
                    let new_log_prob = log_probs.get(t.action);
                    let ratio = (new_log_prob - t.log_prob).exp();

                    // Clipped surrogate loss and its gradient wrt the chosen
                    // action's log-probability.
                    let unclipped = ratio * advantage;
                    let clipped =
                        ratio.clamp(1.0 - self.config.clip_range, 1.0 + self.config.clip_range)
                            * advantage;
                    let policy_loss = -unclipped.min(clipped);
                    let gradient_active = if advantage >= 0.0 {
                        ratio <= 1.0 + self.config.clip_range
                    } else {
                        ratio >= 1.0 - self.config.clip_range
                    };
                    let d_loss_d_logp = if gradient_active {
                        -advantage * ratio
                    } else {
                        0.0
                    };

                    // d log_prob / d logits = one_hot(action) − softmax, so
                    // dLoss/dlogits = d_loss_d_logp · (one_hot − softmax).
                    let probs = log_probs.map(f32::exp);
                    let mut grad_logits = probs.scale(-d_loss_d_logp);
                    grad_logits.data_mut()[t.action] += d_loss_d_logp;

                    // Entropy bonus (maximized ⇒ subtract its gradient).
                    let (entropy, entropy_grad) = categorical_entropy(&masked);
                    grad_logits.add_scaled_inplace(&entropy_grad, -self.config.entropy_coef);

                    // Zero out gradients of masked actions entirely: their
                    // probabilities are numerically zero and must stay so.
                    for (g, &m) in grad_logits.data_mut().iter_mut().zip(t.action_mask.iter()) {
                        if m <= 0.0 {
                            *g = 0.0;
                        }
                    }

                    // Value loss.
                    let value_error = out.value - target_return;
                    let value_loss = value_error * value_error;
                    let grad_value = 2.0 * self.config.value_coef * value_error;

                    // Scale by 1 / minibatch for a mean over the minibatch.
                    let scale = 1.0 / chunk.len() as f32;
                    policy.backward(&grad_logits.scale(scale), grad_value * scale);

                    stats.policy_loss += policy_loss;
                    stats.value_loss += value_loss;
                    stats.entropy += entropy;
                    // SB3-style approximate KL: E[(r − 1) − log r].
                    stats.approx_kl += (ratio - 1.0) - (ratio.max(1e-8)).ln();
                    samples_seen += 1;
                }
                let mut params = policy.params_mut();
                clip_grad_norm(&mut params, self.config.max_grad_norm);
                self.optimizer.step(&mut params);
                stats.gradient_steps += 1;
            }
        }
        let denom = samples_seen.max(1) as f32;
        stats.policy_loss /= denom;
        stats.value_loss /= denom;
        stats.entropy /= denom;
        stats.approx_kl /= denom;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use crate::rollout::Transition;
    use afp_layout::{GRID_SIZE, STATE_CHANNELS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masking_removes_invalid_actions() {
        let logits = Tensor::from_slice(&[1.0, 5.0, 0.0, 2.0]);
        let mask = [1.0, 0.0, 1.0, 1.0];
        let log_probs = masked_log_softmax(&logits, &mask);
        assert!(log_probs.get(1) < -1e6);
        let p: f32 = log_probs.data().iter().map(|l| l.exp()).sum();
        assert!((p - 1.0).abs() < 1e-4);
        assert_eq!(greedy_masked_action(&logits, &mask), 3);
    }

    #[test]
    fn sampling_respects_mask() {
        let logits = Tensor::from_slice(&[0.0, 10.0, 0.0, 0.0]);
        let mask = [1.0, 0.0, 1.0, 0.0];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let (a, lp) = sample_masked_action(&logits, &mask, &mut rng);
            assert!(a == 0 || a == 2, "sampled masked action {a}");
            assert!(lp <= 0.0);
        }
    }

    /// A fixed, non-degenerate observation shared by every synthetic
    /// transition: a spatially varying mask tensor so the deconvolutional head
    /// can tell grid cells apart.
    fn probe_masks() -> Tensor {
        let mut rng = StdRng::seed_from_u64(123);
        afp_tensor::Init::XavierUniform.sample(
            &mut rng,
            &[STATE_CHANNELS, GRID_SIZE, GRID_SIZE],
            64,
            64,
        )
    }

    /// Builds a tiny synthetic buffer whose transitions all prefer action 0.
    fn synthetic_buffer(policy: &mut ActorCritic, cfg: &PpoConfig, reward_for_zero: f32) -> RolloutBuffer {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buffer = RolloutBuffer::new(cfg.gamma, cfg.gae_lambda);
        for _ in 0..6 {
            let masks = probe_masks();
            let g = Tensor::zeros(&[crate::policy::EMBEDDING_DIM]);
            let nb = Tensor::zeros(&[crate::policy::EMBEDDING_DIM]);
            let mut mask = vec![0.0f32; crate::action::ACTION_SPACE];
            mask[0] = 1.0;
            mask[1] = 1.0;
            let out = policy.forward(&masks, &g, &nb);
            let (action, log_prob) = sample_masked_action(&out.logits, &mask, &mut rng);
            let reward = if action == 0 { reward_for_zero } else { 0.0 };
            buffer.push(Transition {
                masks,
                graph_embedding: g,
                node_embedding: nb,
                action_mask: mask,
                action,
                log_prob,
                value: out.value,
                reward,
                done: true,
            });
        }
        buffer
    }

    #[test]
    fn ppo_update_shifts_probability_towards_rewarded_action() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = ActorCritic::new(PolicyConfig::small(), &mut rng);
        let cfg = PpoConfig {
            learning_rate: 3e-3,
            epochs: 4,
            minibatch_size: 3,
            // Keep the value-loss gradient small so the shared CNN is not
            // dragged around by the critic while we probe the actor.
            value_coef: 0.05,
            entropy_coef: 0.0,
            ..PpoConfig::small()
        };
        let mut trainer = PpoTrainer::new(cfg.clone());

        let masks = probe_masks();
        let g = Tensor::zeros(&[crate::policy::EMBEDDING_DIM]);
        let nb = Tensor::zeros(&[crate::policy::EMBEDDING_DIM]);
        let mut mask = vec![0.0f32; crate::action::ACTION_SPACE];
        mask[0] = 1.0;
        mask[1] = 1.0;

        let before = {
            let out = policy.forward(&masks, &g, &nb);
            masked_log_softmax(&out.logits, &mask).get(0)
        };
        for _ in 0..10 {
            let buffer = synthetic_buffer(&mut policy, &cfg, 10.0);
            let stats = trainer.update(&mut policy, &buffer, &mut rng);
            assert!(stats.gradient_steps > 0);
            assert!(stats.approx_kl.is_finite());
        }
        let after = {
            let out = policy.forward(&masks, &g, &nb);
            masked_log_softmax(&out.logits, &mask).get(0)
        };
        assert!(
            after > before,
            "probability of the rewarded action did not increase: {before} → {after}"
        );
    }

    #[test]
    fn update_on_empty_buffer_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = ActorCritic::new(PolicyConfig::small(), &mut rng);
        let mut trainer = PpoTrainer::new(PpoConfig::small());
        let buffer = RolloutBuffer::new(0.99, 0.95);
        let stats = trainer.update(&mut policy, &buffer, &mut rng);
        assert_eq!(stats.gradient_steps, 0);
    }
}

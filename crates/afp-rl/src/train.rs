//! The full RL training loop with the hybrid curriculum schedule.
//!
//! Reproduces the paper's §V-A setup: multiple environments gather
//! experience, PPO updates run after every rollout, the curriculum advances
//! through circuits of increasing complexity, and the per-update mean episode
//! reward and approximate KL divergence are recorded — exactly the two curves
//! plotted in Fig. 6.

use rand::rngs::StdRng;
use rand::SeedableRng;

use afp_circuit::Circuit;
use afp_gnn::RgcnEncoder;

use crate::agent::{AgentConfig, FloorplanAgent};
use crate::curriculum::HclSchedule;
use crate::env::FloorplanEnv;
use crate::ppo::PpoTrainer;
use crate::rollout::RolloutBuffer;

/// Training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Agent (policy + PPO) configuration.
    pub agent: AgentConfig,
    /// Episodes spent on each curriculum circuit (4096 in the paper).
    pub episodes_per_circuit: usize,
    /// Number of environments gathering experience per update (16 in the
    /// paper). Environments are stepped round-robin; the aggregated rollout
    /// size per update equals `environments × mean episode length`.
    pub environments: usize,
    /// Episodes collected (across environments) between PPO updates.
    pub episodes_per_update: usize,
    /// Probability of sampling a new circuit variant in the second curriculum
    /// phase (0.5 in the paper).
    pub p_circuit: f64,
    /// Probability of injecting an extra constraint in the second phase
    /// (0.3 in the paper).
    pub p_constraint: f64,
    /// Master RNG seed.
    pub seed: u64,
}

impl TrainConfig {
    /// A configuration small enough for CPU unit tests (a few seconds).
    pub fn small() -> Self {
        TrainConfig {
            agent: AgentConfig::small(),
            episodes_per_circuit: 8,
            environments: 2,
            episodes_per_update: 4,
            p_circuit: 0.5,
            p_constraint: 0.3,
            seed: 0,
        }
    }

    /// The paper-scale configuration (§V-A): 16 environments, 4096 episodes
    /// per circuit. Only used by the long-running reproduction binaries.
    pub fn paper() -> Self {
        TrainConfig {
            agent: AgentConfig::paper(),
            episodes_per_circuit: 4096,
            environments: 16,
            episodes_per_update: 32,
            p_circuit: 0.5,
            p_constraint: 0.3,
            seed: 0,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::small()
    }
}

/// Statistics recorded after each PPO update — one point of the Fig. 6 curves.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Sequential update index ("epoch" on the Fig. 6 x-axis).
    pub epoch: usize,
    /// Curriculum stage the update belongs to.
    pub stage: usize,
    /// Name of the base circuit of that stage.
    pub circuit: String,
    /// Mean total episode reward over the rollout.
    pub episode_reward_mean: f64,
    /// Mean approximate KL divergence of the update.
    pub approx_kl: f64,
    /// Fraction of episodes in the rollout that completed without violations.
    pub completion_rate: f64,
}

/// Result of a training run.
#[derive(Debug)]
pub struct TrainResult {
    /// The trained agent.
    pub agent: FloorplanAgent,
    /// Per-update statistics (the Fig. 6 curves).
    pub history: Vec<EpochStats>,
}

impl TrainResult {
    /// Mean episode reward over the last `n` updates.
    pub fn recent_reward_mean(&self, n: usize) -> f64 {
        let tail: Vec<f64> = self
            .history
            .iter()
            .rev()
            .take(n)
            .map(|e| e.episode_reward_mean)
            .collect();
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

/// Trains a fresh agent (randomly initialized encoder) on the given curriculum
/// circuits.
pub fn train(circuits: &[Circuit], config: &TrainConfig) -> TrainResult {
    let agent = FloorplanAgent::new(config.agent.clone());
    train_agent(agent, circuits, config)
}

/// Trains an agent whose encoder was pre-trained by `afp-gnn` (the full
/// pipeline of the paper).
pub fn train_with_encoder(
    encoder: RgcnEncoder,
    circuits: &[Circuit],
    config: &TrainConfig,
) -> TrainResult {
    let agent = FloorplanAgent::with_encoder(encoder, config.agent.clone());
    train_agent(agent, circuits, config)
}

/// Trains an existing agent in place (used for ablations and resumed runs).
pub fn train_agent(
    mut agent: FloorplanAgent,
    circuits: &[Circuit],
    config: &TrainConfig,
) -> TrainResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut schedule = HclSchedule::new(circuits.to_vec(), config.episodes_per_circuit);
    schedule.p_circuit = config.p_circuit;
    schedule.p_constraint = config.p_constraint;

    let mut trainer = PpoTrainer::new(config.agent.ppo.clone());
    let mut buffer = RolloutBuffer::new(config.agent.ppo.gamma, config.agent.ppo.gae_lambda);
    let mut history = Vec::new();
    let mut epoch = 0usize;

    while !schedule.is_finished() {
        buffer.clear();
        let mut episode_rewards = Vec::new();
        let mut completions = 0usize;
        let stage = schedule.current_stage();
        let stage_circuit = schedule.circuits()[stage].name.clone();
        // Collect a rollout: `episodes_per_update` episodes spread round-robin
        // over `environments` logical environments. Because the embedding
        // cache is keyed by circuit name, reusing environments is equivalent
        // to fresh ones (the MDP is reset between episodes).
        let mut collected = 0usize;
        while collected < config.episodes_per_update && !schedule.is_finished() {
            let circuit = match schedule.next_episode(&mut rng) {
                Some(c) => c,
                None => break,
            };
            let mut env = FloorplanEnv::new(circuit);
            let summary = agent.run_episode(&mut env, true, Some(&mut buffer), &mut rng);
            episode_rewards.push(summary.total_reward);
            if summary.termination == crate::env::Termination::Completed {
                completions += 1;
            }
            collected += 1;
        }
        if buffer.is_empty() {
            break;
        }
        let stats = trainer.update(agent.policy_mut(), &buffer, &mut rng);
        let n_episodes = episode_rewards.len().max(1);
        history.push(EpochStats {
            epoch,
            stage,
            circuit: stage_circuit,
            episode_reward_mean: episode_rewards.iter().sum::<f64>() / n_episodes as f64,
            approx_kl: stats.approx_kl as f64,
            completion_rate: completions as f64 / n_episodes as f64,
        });
        epoch += 1;
    }

    TrainResult { agent, history }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn small_training_run_produces_history() {
        let circuits = vec![generators::ota3()];
        let result = train(&circuits, &TrainConfig::small());
        assert!(!result.history.is_empty());
        assert_eq!(result.history.len(), 8 / 4);
        for stats in &result.history {
            assert!(stats.episode_reward_mean.is_finite());
            assert!(stats.approx_kl.is_finite());
            assert!((0.0..=1.0).contains(&stats.completion_rate));
        }
        assert!(result.recent_reward_mean(2).is_finite());
    }

    #[test]
    fn curriculum_advances_through_stages() {
        let circuits = vec![generators::ota3(), generators::bias3()];
        let config = TrainConfig {
            episodes_per_circuit: 4,
            episodes_per_update: 2,
            ..TrainConfig::small()
        };
        let result = train(&circuits, &config);
        let stages: Vec<usize> = result.history.iter().map(|h| h.stage).collect();
        assert!(stages.contains(&0));
        assert!(stages.contains(&1));
        // Stages are non-decreasing.
        assert!(stages.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn trained_agent_still_solves_circuits() {
        let circuits = vec![generators::ota3()];
        let mut result = train(&circuits, &TrainConfig::small());
        let solved = result.agent.solve(&generators::ota3());
        assert_eq!(solved.floorplan.num_placed(), 3);
    }
}

//! The joint shape × position action space of the floorplanning MDP.

use serde::{Deserialize, Serialize};

use afp_circuit::SHAPES_PER_BLOCK;
use afp_layout::{Cell, GRID_SIZE};

/// Size of the flat action space: 3 shapes × 32 × 32 cells = 3072
/// (paper §IV-D1).
pub const ACTION_SPACE: usize = SHAPES_PER_BLOCK * GRID_SIZE * GRID_SIZE;

/// One placement action: a candidate shape and the lower-left grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action {
    /// Index of the chosen candidate shape (0–2).
    pub shape_index: usize,
    /// Lower-left grid cell of the placement.
    pub cell: Cell,
}

impl Action {
    /// Creates an action.
    pub fn new(shape_index: usize, cell: Cell) -> Self {
        Action { shape_index, cell }
    }

    /// Flattens the action into an index in `[0, ACTION_SPACE)`, laid out as
    /// `shape * 32 * 32 + y * 32 + x` — the same channel-major layout the
    /// deconvolutional policy head produces.
    pub fn to_index(self) -> usize {
        self.shape_index * GRID_SIZE * GRID_SIZE + self.cell.index()
    }

    /// Decodes a flat action index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ACTION_SPACE`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < ACTION_SPACE, "action index {index} out of range");
        let shape_index = index / (GRID_SIZE * GRID_SIZE);
        let cell = Cell::from_index(index % (GRID_SIZE * GRID_SIZE));
        Action { shape_index, cell }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_space_is_3072() {
        assert_eq!(ACTION_SPACE, 3072);
    }

    #[test]
    fn index_roundtrip() {
        for &idx in &[0usize, 1, 1023, 1024, 2047, 3071] {
            assert_eq!(Action::from_index(idx).to_index(), idx);
        }
        let a = Action::new(2, Cell::new(5, 7));
        assert_eq!(Action::from_index(a.to_index()), a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = Action::from_index(ACTION_SPACE);
    }
}

//! Relational graph convolution layers (paper Eq. 2).
//!
//! Each layer computes, for every node `u`,
//!
//! ```text
//! h_u' = σ( W₀ · h_u + Σ_r Σ_{v ∈ N_r(u)} W_r · h_v / c_{u,r} + b )
//! ```
//!
//! where `r` ranges over the five edge relations of the circuit graph
//! (connectivity, horizontal / vertical alignment, horizontal / vertical
//! symmetry) and `c_{u,r} = |N_r(u)|` is the per-relation degree normalizer.
//!
//! The layer keeps explicit forward / backward passes (like the rest of the
//! NN substrate) so the supervised reward-prediction pre-training can be run
//! without an autodiff engine.

use rand::Rng;

use afp_circuit::{CircuitGraph, EdgeRelation};
use afp_tensor::{layers::ActivationKind, Init, Param, Tensor};

/// One relational graph convolution layer.
#[derive(Debug)]
pub struct RgcnLayer {
    /// Self-connection weight, `[d_in, d_out]`.
    w_self: Param,
    /// Per-relation weights, `[d_in, d_out]` each, indexed by
    /// [`EdgeRelation::index`].
    w_rel: Vec<Param>,
    /// Bias, `[d_out]`.
    bias: Param,
    in_features: usize,
    out_features: usize,
    activation: Option<ActivationKind>,
    // Forward cache.
    cached_input: Option<Tensor>,
    cached_adjacency: Option<Vec<Tensor>>,
    cached_preactivation: Option<Tensor>,
}

impl RgcnLayer {
    /// Creates a layer with Xavier-initialized weights.
    pub fn new<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        activation: Option<ActivationKind>,
        rng: &mut R,
    ) -> Self {
        let init = Init::XavierUniform;
        let w_self = Param::new(
            "rgcn.w_self",
            init.sample(rng, &[in_features, out_features], in_features, out_features),
        );
        let w_rel = EdgeRelation::ALL
            .iter()
            .map(|r| {
                Param::new(
                    format!("rgcn.w_{r:?}"),
                    init.sample(rng, &[in_features, out_features], in_features, out_features),
                )
            })
            .collect();
        RgcnLayer {
            w_self,
            w_rel,
            bias: Param::new("rgcn.bias", Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            activation,
            cached_input: None,
            cached_adjacency: None,
            cached_preactivation: None,
        }
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Builds the degree-normalized adjacency matrix of one relation.
    fn normalized_adjacency(graph: &CircuitGraph, relation: EdgeRelation) -> Tensor {
        let n = graph.num_nodes();
        let mut a = Tensor::zeros(&[n, n]);
        for u in 0..n {
            let neighbors = graph.neighbors(relation, u);
            if neighbors.is_empty() {
                continue;
            }
            let norm = 1.0 / neighbors.len() as f32;
            for &v in neighbors {
                *a.at_mut(u, v) = norm;
            }
        }
        a
    }

    fn activate(&self, z: f32) -> f32 {
        match self.activation {
            Some(ActivationKind::Relu) => z.max(0.0),
            Some(ActivationKind::Tanh) => z.tanh(),
            Some(ActivationKind::Sigmoid) => 1.0 / (1.0 + (-z).exp()),
            None => z,
        }
    }

    fn activate_grad(&self, z: f32) -> f32 {
        match self.activation {
            Some(ActivationKind::Relu) => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Some(ActivationKind::Tanh) => {
                let t = z.tanh();
                1.0 - t * t
            }
            Some(ActivationKind::Sigmoid) => {
                let s = 1.0 / (1.0 + (-z).exp());
                s * (1.0 - s)
            }
            None => 1.0,
        }
    }

    /// Runs the layer over the whole graph. `node_features` is `[N, d_in]`;
    /// the result is `[N, d_out]`.
    ///
    /// # Panics
    ///
    /// Panics if the feature width does not match `in_features`.
    pub fn forward(&mut self, graph: &CircuitGraph, node_features: &Tensor) -> Tensor {
        assert_eq!(node_features.ndim(), 2, "node features must be [N, d_in]");
        assert_eq!(
            node_features.shape()[1],
            self.in_features,
            "RgcnLayer expects {} input features, got {}",
            self.in_features,
            node_features.shape()[1]
        );
        let n = graph.num_nodes();
        assert_eq!(node_features.shape()[0], n, "feature row count != node count");

        let adjacency: Vec<Tensor> = EdgeRelation::ALL
            .iter()
            .map(|&r| Self::normalized_adjacency(graph, r))
            .collect();

        // Z = X·W_self + Σ_r A_r·X·W_r + 1·bᵀ
        let mut z = node_features.matmul(&self.w_self.value);
        for (r, a) in adjacency.iter().enumerate() {
            let messages = a.matmul(node_features).matmul(&self.w_rel[r].value);
            z = z.add(&messages);
        }
        for row in 0..n {
            for col in 0..self.out_features {
                *z.at_mut(row, col) += self.bias.value.get(col);
            }
        }
        let out = z.map(|v| self.activate(v));
        self.cached_input = Some(node_features.clone());
        self.cached_adjacency = Some(adjacency);
        self.cached_preactivation = Some(z);
        out
    }

    /// Back-propagates `grad_output = dL/d output` (`[N, d_out]`), accumulating
    /// parameter gradients and returning `dL/d node_features` (`[N, d_in]`).
    ///
    /// # Panics
    ///
    /// Panics if called before [`RgcnLayer::forward`].
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("RgcnLayer::backward called before forward");
        let adjacency = self.cached_adjacency.as_ref().expect("adjacency cached");
        let z = self.cached_preactivation.as_ref().expect("preactivation cached");

        // dZ = dOut ⊙ σ'(Z)
        let dz = grad_output.zip(z, |g, zz| g * self.activate_grad(zz));

        // Self connection.
        self.w_self
            .grad
            .add_scaled_inplace(&x.transpose().matmul(&dz), 1.0);
        let mut dx = dz.matmul(&self.w_self.value.transpose());

        // Relations.
        for (r, a) in adjacency.iter().enumerate() {
            let ax = a.matmul(x);
            self.w_rel[r]
                .grad
                .add_scaled_inplace(&ax.transpose().matmul(&dz), 1.0);
            let through = a.transpose().matmul(&dz.matmul(&self.w_rel[r].value.transpose()));
            dx = dx.add(&through);
        }

        // Bias: column sums of dZ.
        let n = dz.shape()[0];
        for col in 0..self.out_features {
            let mut s = 0.0;
            for row in 0..n {
                s += dz.at(row, col);
            }
            self.bias.grad.data_mut()[col] += s;
        }
        dx
    }

    /// Immutable access to all parameters.
    pub fn params(&self) -> Vec<&Param> {
        let mut p = vec![&self.w_self, &self.bias];
        p.extend(self.w_rel.iter());
        p
    }

    /// Mutable access to all parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.w_self, &mut self.bias];
        p.extend(self.w_rel.iter_mut());
        p
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph_and_features() -> (CircuitGraph, Tensor) {
        let circuit = generators::ota8();
        let graph = CircuitGraph::from_circuit(&circuit);
        let rows: Vec<Vec<f32>> = graph.feature_rows().to_vec();
        let features = Tensor::from_rows(&rows);
        (graph, features)
    }

    #[test]
    fn forward_shape_is_nodes_by_out_features() {
        let (graph, features) = graph_and_features();
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = RgcnLayer::new(graph.feature_dim(), 16, Some(ActivationKind::Relu), &mut rng);
        let out = layer.forward(&graph, &features);
        assert_eq!(out.shape(), &[graph.num_nodes(), 16]);
        assert!(out.is_finite());
    }

    #[test]
    fn isolated_relations_do_not_produce_nan() {
        // ota3 has no alignment edges at all; normalization must not divide by 0.
        let circuit = generators::ota3();
        let graph = CircuitGraph::from_circuit(&circuit);
        let features = Tensor::from_rows(&graph.feature_rows().to_vec());
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = RgcnLayer::new(graph.feature_dim(), 8, None, &mut rng);
        let out = layer.forward(&graph, &features);
        assert!(out.is_finite());
    }

    #[test]
    fn message_passing_uses_neighbours() {
        // With zero self-weight and bias, a node's output depends only on its
        // neighbours' features.
        let (graph, features) = graph_and_features();
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = RgcnLayer::new(graph.feature_dim(), 4, None, &mut rng);
        layer.w_self.value = Tensor::zeros(&[graph.feature_dim(), 4]);
        let out = layer.forward(&graph, &features);
        // A node with at least one neighbour gets a non-zero embedding.
        let busy = (0..graph.num_nodes())
            .find(|&n| graph.degree(n) > 0)
            .unwrap();
        assert!(out.row(busy).norm() > 0.0);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let (graph, features) = graph_and_features();
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = RgcnLayer::new(graph.feature_dim(), 6, Some(ActivationKind::Tanh), &mut rng);

        // Probe loss: weighted sum of outputs.
        let probe = |out: &Tensor| -> (f32, Tensor) {
            let w: Vec<f32> = (0..out.len()).map(|i| ((i % 7) as f32 - 3.0) / 3.0).collect();
            let loss = out.data().iter().zip(w.iter()).map(|(o, wi)| o * wi).sum();
            (loss, Tensor::from_vec(w, out.shape()))
        };

        layer.zero_grad();
        let out = layer.forward(&graph, &features);
        let (_, grad_out) = probe(&out);
        let grad_in = layer.backward(&grad_out);
        let analytic_w_self = layer.w_self.grad.clone();

        let eps = 1e-2f32;
        // Check a handful of W_self entries.
        for idx in [0usize, 7, 23, 51] {
            let orig = layer.w_self.value.data()[idx];
            layer.w_self.value.data_mut()[idx] = orig + eps;
            let (lp, _) = probe(&layer.forward(&graph, &features));
            layer.w_self.value.data_mut()[idx] = orig - eps;
            let (lm, _) = probe(&layer.forward(&graph, &features));
            layer.w_self.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_w_self.data()[idx];
            assert!(
                afp_tensor::gradcheck::relative_error(numeric, analytic) < 2e-2,
                "w_self[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Check an input-feature gradient entry.
        let mut x = features.clone();
        let fidx = 5;
        let orig = x.data()[fidx];
        x.data_mut()[fidx] = orig + eps;
        let (lp, _) = probe(&layer.forward(&graph, &x));
        x.data_mut()[fidx] = orig - eps;
        let (lm, _) = probe(&layer.forward(&graph, &x));
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            afp_tensor::gradcheck::relative_error(numeric, grad_in.data()[fidx]) < 2e-2,
            "input grad: {numeric} vs {}",
            grad_in.data()[fidx]
        );
    }

    #[test]
    fn params_cover_self_relations_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = RgcnLayer::new(10, 4, None, &mut rng);
        // W_self + bias + 5 relation weights.
        assert_eq!(layer.params().len(), 2 + EdgeRelation::COUNT);
    }
}

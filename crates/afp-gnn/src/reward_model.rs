//! The supervised reward-prediction model (paper Fig. 3).
//!
//! Architecture: the 4-layer [`RgcnEncoder`] followed by node mean aggregation
//! and a 5-layer fully connected head that regresses the floorplan reward of
//! the input circuit graph. After pre-training, the head is discarded and the
//! encoder alone provides circuit / block embeddings to the RL agent.

use rand::Rng;

use afp_circuit::CircuitGraph;
use afp_tensor::layers::{Activation, Dense, Sequential};
use afp_tensor::{loss::mse, optim::Adam, Layer, Param, Tensor};

use crate::encoder::{CircuitEmbedding, RgcnEncoder, EMBEDDING_DIM};

/// The R-GCN reward regressor.
#[derive(Debug)]
pub struct RewardModel {
    encoder: RgcnEncoder,
    head: Sequential,
    cached_nodes: usize,
}

impl RewardModel {
    /// Creates a model with the paper's architecture: 4 R-GCN layers and a
    /// 5-layer MLP head (64-64-32-16-1).
    pub fn new<R: Rng + ?Sized>(input_dim: usize, rng: &mut R) -> Self {
        let encoder = RgcnEncoder::new(input_dim, rng);
        let mut head = Sequential::new();
        head.push(Dense::new(EMBEDDING_DIM, 64, rng));
        head.push(Activation::relu());
        head.push(Dense::new(64, 64, rng));
        head.push(Activation::relu());
        head.push(Dense::new(64, 32, rng));
        head.push(Activation::relu());
        head.push(Dense::new(32, 16, rng));
        head.push(Activation::relu());
        head.push(Dense::new(16, 1, rng));
        RewardModel {
            encoder,
            head,
            cached_nodes: 0,
        }
    }

    /// Predicts the reward of a circuit graph.
    pub fn predict(&mut self, graph: &CircuitGraph) -> f32 {
        let emb = self.encoder.encode(graph);
        self.cached_nodes = emb.node_embeddings.shape()[0];
        self.head.forward(&emb.graph_embedding).get(0)
    }

    /// Runs one training step on a single `(graph, target reward)` example and
    /// returns the squared error. Gradients are accumulated; callers batch
    /// examples by invoking this repeatedly before [`RewardModel::apply_step`].
    pub fn accumulate_example(&mut self, graph: &CircuitGraph, target: f32) -> f32 {
        let emb = self.encoder.encode(graph);
        self.cached_nodes = emb.node_embeddings.shape()[0];
        let pred = self.head.forward(&emb.graph_embedding);
        let (loss, grad) = mse(&pred, &Tensor::from_slice(&[target]));
        let grad_graph_emb = self.head.backward(&grad);
        self.encoder
            .backward_from_graph_embedding(&grad_graph_emb, self.cached_nodes);
        loss
    }

    /// Applies an optimizer step over all accumulated gradients and clears
    /// them.
    pub fn apply_step(&mut self, optimizer: &mut Adam) {
        let mut params = self.params_mut();
        optimizer.step(&mut params);
        drop(params);
        self.zero_grad();
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.encoder.zero_grad();
        self.head.zero_grad();
    }

    /// All learnable parameters (encoder + head), mutably.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.encoder.params_mut();
        p.extend(self.head.params_mut());
        p
    }

    /// Total number of learnable scalars.
    pub fn num_parameters(&self) -> usize {
        self.encoder.params().iter().map(|p| p.num_elements()).sum::<usize>()
            + self.head.num_parameters()
    }

    /// Borrows the pre-trained encoder (read-only).
    pub fn encoder(&self) -> &RgcnEncoder {
        &self.encoder
    }

    /// Extracts the encoder, discarding the regression head — the transfer
    /// step of paper §IV-D ("we remove the final FC layers and use the
    /// remaining part as encoder for the RL agent").
    pub fn into_encoder(self) -> RgcnEncoder {
        self.encoder
    }

    /// Encodes a circuit graph with the (frozen) encoder.
    pub fn encode(&mut self, graph: &CircuitGraph) -> CircuitEmbedding {
        self.encoder.encode(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::{generators, NODE_FEATURE_DIM};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prediction_is_finite_scalar() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = RewardModel::new(NODE_FEATURE_DIM, &mut rng);
        let graph = CircuitGraph::from_circuit(&generators::ota8());
        let pred = model.predict(&graph);
        assert!(pred.is_finite());
        assert!(model.num_parameters() > 10_000);
    }

    #[test]
    fn single_example_overfits() {
        // The model must be able to memorize one (graph, reward) pair — a
        // minimal sanity check that gradients flow end to end through the
        // head, the mean aggregation and the R-GCN layers.
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = RewardModel::new(NODE_FEATURE_DIM, &mut rng);
        let graph = CircuitGraph::from_circuit(&generators::ota5());
        let target = -2.5f32;
        let mut opt = Adam::new(5e-3);
        let mut last_loss = f32::MAX;
        for _ in 0..200 {
            last_loss = model.accumulate_example(&graph, target);
            model.apply_step(&mut opt);
        }
        assert!(last_loss < 0.05, "failed to overfit: loss {last_loss}");
        assert!((model.predict(&graph) - target).abs() < 0.5);
    }

    #[test]
    fn two_circuits_get_different_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = RewardModel::new(NODE_FEATURE_DIM, &mut rng);
        let ga = CircuitGraph::from_circuit(&generators::ota3());
        let gb = CircuitGraph::from_circuit(&generators::bias9());
        let mut opt = Adam::new(5e-3);
        for _ in 0..300 {
            model.accumulate_example(&ga, -1.0);
            model.accumulate_example(&gb, -6.0);
            model.apply_step(&mut opt);
        }
        let pa = model.predict(&ga);
        let pb = model.predict(&gb);
        assert!(pa > pb, "expected ota3 ({pa}) to score above bias9 ({pb})");
    }

    #[test]
    fn into_encoder_discards_head() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = RewardModel::new(NODE_FEATURE_DIM, &mut rng);
        let enc = model.into_encoder();
        assert_eq!(enc.embedding_dim(), EMBEDDING_DIM);
    }
}

//! Supervised pre-training of the R-GCN reward model.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use afp_circuit::NODE_FEATURE_DIM;
use afp_tensor::optim::Adam;

use crate::dataset::{generate_dataset, greedy_reward_label, LabeledGraph, RewardLabeler};
use crate::reward_model::RewardModel;

/// Configuration of the pre-training run.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainConfig {
    /// Number of labelled examples to generate.
    pub samples: usize,
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Minibatch size (gradients are accumulated over this many examples
    /// before an optimizer step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Fraction of the dataset held out for validation.
    pub validation_fraction: f64,
    /// RNG seed controlling dataset generation, shuffling and initialization.
    pub seed: u64,
}

impl PretrainConfig {
    /// A configuration small enough for CPU unit tests (seconds).
    pub fn small() -> Self {
        PretrainConfig {
            samples: 24,
            epochs: 8,
            batch_size: 4,
            learning_rate: 3e-3,
            validation_fraction: 0.2,
            seed: 0,
        }
    }

    /// The paper-scale configuration: 21 600 samples. Only used by the
    /// long-running reproduction binaries.
    pub fn paper() -> Self {
        PretrainConfig {
            samples: 21_600,
            epochs: 30,
            batch_size: 64,
            learning_rate: 1e-3,
            validation_fraction: 0.1,
            seed: 0,
        }
    }
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig::small()
    }
}

/// Outcome of a pre-training run.
#[derive(Debug)]
pub struct PretrainResult {
    /// The trained reward model (encoder + head).
    pub model: RewardModel,
    /// Mean training loss per epoch.
    pub train_losses: Vec<f32>,
    /// Mean validation loss per epoch.
    pub validation_losses: Vec<f32>,
    /// Number of training examples used.
    pub train_size: usize,
    /// Number of validation examples used.
    pub validation_size: usize,
}

impl PretrainResult {
    /// Final validation mean-squared error.
    pub fn final_validation_mse(&self) -> f32 {
        self.validation_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Pre-trains a reward model with the default greedy labeller.
pub fn pretrain(config: &PretrainConfig) -> PretrainResult {
    pretrain_with_labeler(config, &greedy_reward_label)
}

/// Pre-trains a reward model with a caller-supplied labelling optimizer (e.g.
/// simulated annealing from `afp-metaheuristics` for full paper fidelity).
pub fn pretrain_with_labeler(config: &PretrainConfig, labeler: &RewardLabeler) -> PretrainResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dataset = generate_dataset(config.samples, &mut rng, labeler);
    pretrain_on_dataset(config, dataset)
}

/// Pre-trains a reward model on an existing dataset.
pub fn pretrain_on_dataset(config: &PretrainConfig, mut dataset: Vec<LabeledGraph>) -> PretrainResult {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    dataset.shuffle(&mut rng);
    let val_size = ((dataset.len() as f64) * config.validation_fraction).round() as usize;
    let val_size = val_size.min(dataset.len().saturating_sub(1));
    let validation = dataset.split_off(dataset.len() - val_size);
    let train = dataset;

    let mut model = RewardModel::new(NODE_FEATURE_DIM, &mut rng);
    let mut optimizer = Adam::new(config.learning_rate);
    let mut train_losses = Vec::with_capacity(config.epochs);
    let mut validation_losses = Vec::with_capacity(config.epochs);

    let mut order: Vec<usize> = (0..train.len()).collect();
    for _epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut since_step = 0usize;
        for &idx in &order {
            let ex = &train[idx];
            epoch_loss += model.accumulate_example(&ex.graph, ex.reward);
            since_step += 1;
            if since_step >= config.batch_size {
                model.apply_step(&mut optimizer);
                since_step = 0;
            }
        }
        if since_step > 0 {
            model.apply_step(&mut optimizer);
        }
        train_losses.push(epoch_loss / train.len().max(1) as f32);
        validation_losses.push(evaluate(&mut model, &validation));
    }

    PretrainResult {
        model,
        train_losses,
        validation_losses,
        train_size: train.len(),
        validation_size: validation.len(),
    }
}

/// Mean squared error of the model over a dataset slice.
pub fn evaluate(model: &mut RewardModel, dataset: &[LabeledGraph]) -> f32 {
    if dataset.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f32;
    for ex in dataset {
        let err = model.predict(&ex.graph) - ex.reward;
        total += err * err;
    }
    total / dataset.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pretraining_reduces_training_loss() {
        let result = pretrain(&PretrainConfig::small());
        let first = result.train_losses.first().copied().unwrap();
        let last = result.train_losses.last().copied().unwrap();
        assert!(
            last < first,
            "training loss did not decrease: {first} → {last}"
        );
        assert!(result.final_validation_mse().is_finite());
        assert_eq!(result.train_size + result.validation_size, 24);
    }

    #[test]
    fn constant_labels_are_learned_quickly() {
        let config = PretrainConfig {
            samples: 10,
            epochs: 20,
            batch_size: 5,
            learning_rate: 5e-3,
            validation_fraction: 0.2,
            seed: 3,
        };
        let result = pretrain_with_labeler(&config, &|_| -3.0);
        assert!(
            result.final_validation_mse() < 0.5,
            "val mse {}",
            result.final_validation_mse()
        );
    }

    #[test]
    fn paper_config_matches_paper_scale() {
        let cfg = PretrainConfig::paper();
        assert_eq!(cfg.samples, 21_600);
    }
}

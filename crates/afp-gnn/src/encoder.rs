//! The R-GCN circuit encoder: 4 relational layers + node mean aggregation.
//!
//! The encoder is pre-trained as part of the reward-prediction model
//! (paper Fig. 3) and then reused — with its MLP head removed — as the circuit
//! / block feature provider of the RL agent (paper §IV-D). Node embeddings
//! `n_k` and the mean-aggregated graph embedding `g` are both 32-dimensional,
//! matching the paper's state description (§IV-A).

use rand::Rng;

use afp_circuit::CircuitGraph;
use afp_tensor::{layers::ActivationKind, Param, StateDict, Tensor};

use crate::rgcn::RgcnLayer;

/// Dimension of the node and graph embeddings produced by the encoder
/// (32 in the paper).
pub const EMBEDDING_DIM: usize = 32;

/// Output of the encoder for one circuit graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitEmbedding {
    /// Per-node embeddings, `[N, EMBEDDING_DIM]`.
    pub node_embeddings: Tensor,
    /// Mean-aggregated graph embedding, `[EMBEDDING_DIM]`.
    pub graph_embedding: Tensor,
}

impl CircuitEmbedding {
    /// Embedding of one node as a 1-D tensor.
    pub fn node(&self, index: usize) -> Tensor {
        self.node_embeddings.row(index)
    }
}

/// The 4-layer R-GCN encoder.
#[derive(Debug)]
pub struct RgcnEncoder {
    layers: Vec<RgcnLayer>,
}

impl RgcnEncoder {
    /// Creates an encoder with the paper's architecture: four R-GCN layers
    /// narrowing from the node-feature width to [`EMBEDDING_DIM`].
    pub fn new<R: Rng + ?Sized>(input_dim: usize, rng: &mut R) -> Self {
        Self::with_hidden_dims(input_dim, &[64, 64, 48, EMBEDDING_DIM], rng)
    }

    /// Creates an encoder with explicit hidden widths (the last width is the
    /// embedding dimension). Intermediate layers use ReLU, the output layer is
    /// linear so embeddings are not clipped to the positive orthant.
    pub fn with_hidden_dims<R: Rng + ?Sized>(
        input_dim: usize,
        hidden: &[usize],
        rng: &mut R,
    ) -> Self {
        assert!(!hidden.is_empty(), "at least one layer required");
        let mut layers = Vec::with_capacity(hidden.len());
        let mut d_in = input_dim;
        for (i, &d_out) in hidden.iter().enumerate() {
            let act = if i + 1 == hidden.len() {
                None
            } else {
                Some(ActivationKind::Relu)
            };
            layers.push(RgcnLayer::new(d_in, d_out, act, rng));
            d_in = d_out;
        }
        RgcnEncoder { layers }
    }

    /// Number of R-GCN layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The embedding dimension produced by the final layer.
    pub fn embedding_dim(&self) -> usize {
        self.layers.last().map(|l| l.out_features()).unwrap_or(0)
    }

    /// Builds the node feature matrix of a graph.
    pub fn input_features(graph: &CircuitGraph) -> Tensor {
        Tensor::from_rows(&graph.feature_rows().to_vec())
    }

    /// Encodes a circuit graph into node and graph embeddings.
    pub fn encode(&mut self, graph: &CircuitGraph) -> CircuitEmbedding {
        let mut x = Self::input_features(graph);
        for layer in &mut self.layers {
            x = layer.forward(graph, &x);
        }
        let graph_embedding = x.mean_rows();
        CircuitEmbedding {
            node_embeddings: x,
            graph_embedding,
        }
    }

    /// Back-propagates a gradient with respect to the node embeddings
    /// (`[N, EMBEDDING_DIM]`), accumulating parameter gradients and returning
    /// the gradient with respect to the input node features.
    pub fn backward(&mut self, grad_node_embeddings: &Tensor) -> Tensor {
        let mut g = grad_node_embeddings.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Back-propagates a gradient with respect to the *graph* embedding
    /// (`[EMBEDDING_DIM]`): the mean aggregation spreads it uniformly over the
    /// node embeddings.
    pub fn backward_from_graph_embedding(&mut self, grad_graph: &Tensor, num_nodes: usize) -> Tensor {
        let scale = 1.0 / num_nodes.max(1) as f32;
        let rows: Vec<Tensor> = (0..num_nodes).map(|_| grad_graph.scale(scale)).collect();
        let grad_nodes = Tensor::stack(&rows);
        self.backward(&grad_nodes)
    }

    /// All learnable parameters.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All learnable parameters, mutably.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Extracts the encoder weights as a state dict (for checkpointing and for
    /// handing the pre-trained encoder to the RL agent).
    pub fn state_dict(&self) -> StateDict {
        let mut dict = StateDict::new();
        for (i, p) in self.params().iter().enumerate() {
            dict.insert(format!("{i}:{}", p.name), p.value.clone());
        }
        dict
    }

    /// Loads encoder weights from a state dict produced by
    /// [`RgcnEncoder::state_dict`].
    ///
    /// # Errors
    ///
    /// Returns an error string if the parameter count or shapes mismatch.
    pub fn load_state_dict(&mut self, dict: &StateDict) -> Result<(), String> {
        let mut params = self.params_mut();
        if params.len() != dict.len() {
            return Err(format!(
                "encoder has {} parameters, checkpoint has {}",
                params.len(),
                dict.len()
            ));
        }
        for (p, (_, value)) in params.iter_mut().zip(dict.iter()) {
            if p.value.shape() != value.shape() {
                return Err(format!(
                    "shape mismatch for {}: {:?} vs {:?}",
                    p.name,
                    p.value.shape(),
                    value.shape()
                ));
            }
            p.value = value.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::{generators, NODE_FEATURE_DIM};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encoder_produces_32_dim_embeddings() {
        let circuit = generators::ota8();
        let graph = CircuitGraph::from_circuit(&circuit);
        let mut rng = StdRng::seed_from_u64(0);
        let mut enc = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
        assert_eq!(enc.num_layers(), 4);
        assert_eq!(enc.embedding_dim(), EMBEDDING_DIM);
        let emb = enc.encode(&graph);
        assert_eq!(emb.node_embeddings.shape(), &[8, EMBEDDING_DIM]);
        assert_eq!(emb.graph_embedding.shape(), &[EMBEDDING_DIM]);
        assert!(emb.graph_embedding.is_finite());
        assert_eq!(emb.node(3).len(), EMBEDDING_DIM);
    }

    #[test]
    fn different_circuits_get_different_embeddings() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut enc = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
        let a = enc.encode(&CircuitGraph::from_circuit(&generators::ota5()));
        let b = enc.encode(&CircuitGraph::from_circuit(&generators::bias9()));
        let diff = a.graph_embedding.sub(&b.graph_embedding).norm();
        assert!(diff > 1e-3, "embeddings are suspiciously identical");
    }

    #[test]
    fn graph_embedding_is_node_mean() {
        let circuit = generators::ota3();
        let graph = CircuitGraph::from_circuit(&circuit);
        let mut rng = StdRng::seed_from_u64(2);
        let mut enc = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
        let emb = enc.encode(&graph);
        let manual = emb.node_embeddings.mean_rows();
        assert_eq!(manual.data(), emb.graph_embedding.data());
    }

    #[test]
    fn state_dict_roundtrip_preserves_outputs() {
        let circuit = generators::rs_latch();
        let graph = CircuitGraph::from_circuit(&circuit);
        let mut rng = StdRng::seed_from_u64(3);
        let mut enc_a = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
        let dict = enc_a.state_dict();
        let mut rng2 = StdRng::seed_from_u64(99);
        let mut enc_b = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng2);
        enc_b.load_state_dict(&dict).unwrap();
        let ea = enc_a.encode(&graph);
        let eb = enc_b.encode(&graph);
        assert_eq!(ea.graph_embedding.data(), eb.graph_embedding.data());
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc_a = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
        let mut enc_small = RgcnEncoder::with_hidden_dims(NODE_FEATURE_DIM, &[8], &mut rng);
        assert!(enc_small.load_state_dict(&enc_a.state_dict()).is_err());
    }

    #[test]
    fn backward_from_graph_embedding_populates_gradients() {
        let circuit = generators::ota5();
        let graph = CircuitGraph::from_circuit(&circuit);
        let mut rng = StdRng::seed_from_u64(5);
        let mut enc = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
        enc.zero_grad();
        let emb = enc.encode(&graph);
        let grad = Tensor::ones(&[EMBEDDING_DIM]);
        let _ = enc.backward_from_graph_embedding(&grad, emb.node_embeddings.shape()[0]);
        assert!(enc.params().iter().any(|p| p.grad.norm() > 0.0));
    }
}

//! Floorplan / reward dataset generation for R-GCN pre-training.
//!
//! The paper's dataset (§IV-C) contains 21 600 floorplans with reward labels
//! obtained by optimizing each circuit with a mixture of SA, GA and PSO. The
//! dataset here is built the same way, but the labelling optimizer is
//! injected: the default is a fast greedy placer (so the crate has no
//! dependency on the metaheuristics crate), and the benchmark binaries pass
//! an SA-based labeller for full fidelity.

use rand::Rng;

use afp_circuit::{generators, Circuit, CircuitGraph};
use afp_layout::{metrics, Canvas, Cell, Floorplan, RewardWeights, GRID_SIZE};

/// One pre-training example: a circuit, its relational graph and the reward of
/// an optimized floorplan for it.
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The circuit the example was generated from.
    pub circuit: Circuit,
    /// Its relational graph (the model input).
    pub graph: CircuitGraph,
    /// The reward label (paper Eq. 5 of the optimized floorplan).
    pub reward: f32,
}

/// A function that floorplans a circuit and returns the episode reward of the
/// result. Used to label pre-training examples.
pub type RewardLabeler = dyn Fn(&Circuit) -> f64 + Send + Sync;

/// Fast greedy placement used as the default labeller: blocks are placed in
/// decreasing-area order, each at the admissible cell (sampled on a stride-2
/// sub-grid) that minimizes the combined dead-space and normalized-HPWL
/// increase. Returns the episode reward of the resulting floorplan.
pub fn greedy_reward_label(circuit: &Circuit) -> f64 {
    let floorplan = greedy_floorplan(circuit);
    let hpwl_min = metrics::hpwl_lower_bound(circuit);
    metrics::episode_reward(circuit, &floorplan, hpwl_min, &RewardWeights::default())
}

/// The greedy floorplan underlying [`greedy_reward_label`]; exposed so tests
/// and benchmarks can inspect the geometry as well as the reward.
pub fn greedy_floorplan(circuit: &Circuit) -> Floorplan {
    let canvas = Canvas::for_circuit(circuit);
    let mut floorplan = Floorplan::new(canvas);
    let shape_sets = afp_circuit::shapes::shape_sets(circuit);
    let hpwl_norm = metrics::hpwl_lower_bound(circuit);
    for block_id in circuit.blocks_by_decreasing_area() {
        let shapes = &shape_sets[block_id.index()];
        let mut best: Option<(f64, usize, Cell)> = None;
        let before = metrics::metrics(circuit, &floorplan);
        for shape_idx in 0..afp_circuit::SHAPES_PER_BLOCK {
            let shape = shapes.shape(shape_idx);
            // Constraint-aware admissibility: symmetry / alignment partners of
            // already placed blocks restrict where this one may go.
            let admissible =
                afp_layout::masks::positional_mask(circuit, &floorplan, block_id, &shape);
            let allowed_count = admissible.iter().filter(|&&v| v == 1.0).count();
            // Subsample the candidate anchors when the admissible region is
            // large; evaluate all of them when the constraints narrow it down.
            let stride = if allowed_count > 256 { 2 } else { 1 };
            let mut scratch = floorplan.clone();
            let mut y = 0;
            while y < GRID_SIZE {
                let mut x = 0;
                while x < GRID_SIZE {
                    let cell = Cell::new(x, y);
                    if admissible[cell.index()] == 1.0
                        && scratch.place(block_id, shape_idx, shape, cell).is_ok()
                    {
                        let after = metrics::metrics(circuit, &scratch);
                        scratch.unplace_last();
                        let cost = (after.dead_space - before.dead_space)
                            + (after.hpwl_um - before.hpwl_um) / hpwl_norm;
                        if best.map_or(true, |(b, _, _)| cost < b) {
                            best = Some((cost, shape_idx, cell));
                        }
                    }
                    x += stride;
                }
                y += stride;
            }
        }
        if best.is_none() {
            // The constraint mask can become unsatisfiable (the mirrored
            // position is already occupied). Fall back to any overlap-free
            // cell so the floorplan is at least complete; the resulting
            // violation is reflected in the reward label.
            let shape = shapes.shape(shapes.most_square());
            let (gw, gh) = floorplan.grid_footprint(&shape);
            // One bitboard anchor pass; the first set bit in row-major order
            // is the same cell the old per-cell fits scan found.
            let anchors = floorplan.grid().free_anchors(gw, gh);
            if let Some(cell) = anchors.first_set() {
                best = Some((f64::MAX, shapes.most_square(), cell));
            }
        }
        if let Some((_, shape_idx, cell)) = best {
            let _ = floorplan.place(block_id, shape_idx, shapes.shape(shape_idx), cell);
        }
    }
    floorplan
}

/// Generates `n` labelled examples by sampling randomized variants of the
/// dataset circuit families (OTAs, bias networks, drivers, latches,
/// comparators, level shifters, clock synchronizers, oscillators) and labelling
/// each with `labeler`. Roughly half the samples keep their constraints and
/// half have them stripped, mirroring the paper's constrained / unconstrained
/// balance.
pub fn generate_dataset<R: Rng + ?Sized>(
    n: usize,
    rng: &mut R,
    labeler: &RewardLabeler,
) -> Vec<LabeledGraph> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let circuit = generators::random_circuit(rng);
        let graph = CircuitGraph::from_circuit(&circuit);
        let reward = labeler(&circuit) as f32;
        out.push(LabeledGraph {
            circuit,
            graph,
            reward,
        });
    }
    out
}

/// Generates a dataset with the default greedy labeller.
pub fn generate_default_dataset<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<LabeledGraph> {
    generate_dataset(n, rng, &greedy_reward_label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_floorplan_places_every_block() {
        for circuit in [generators::ota5(), generators::rs_latch()] {
            let fp = greedy_floorplan(&circuit);
            assert_eq!(fp.num_placed(), circuit.num_blocks(), "{}", circuit.name);
        }
    }

    #[test]
    fn greedy_reward_is_negative_and_finite() {
        let r = greedy_reward_label(&generators::ota5());
        assert!(r.is_finite());
        assert!(r < 0.0);
        // The greedy placement should not trip the -50 violation penalty on an
        // unconstrained-axis-friendly circuit.
        assert!(r > -50.0);
    }

    #[test]
    fn dataset_has_requested_size_and_finite_labels() {
        let mut rng = StdRng::seed_from_u64(0);
        let ds = generate_default_dataset(6, &mut rng);
        assert_eq!(ds.len(), 6);
        for ex in &ds {
            assert!(ex.reward.is_finite());
            assert_eq!(ex.graph.num_nodes(), ex.circuit.num_blocks());
        }
    }

    #[test]
    fn dataset_is_reproducible_by_seed() {
        let a = generate_default_dataset(3, &mut StdRng::seed_from_u64(11));
        let b = generate_default_dataset(3, &mut StdRng::seed_from_u64(11));
        let ra: Vec<f32> = a.iter().map(|e| e.reward).collect();
        let rb: Vec<f32> = b.iter().map(|e| e.reward).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn custom_labeler_is_used() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = generate_dataset(2, &mut rng, &|_c: &Circuit| -7.5);
        assert!(ds.iter().all(|e| (e.reward + 7.5).abs() < 1e-6));
    }
}

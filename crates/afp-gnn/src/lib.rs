//! # afp-gnn — relational graph convolutional circuit representation learning
//!
//! Implements the paper's §IV-C: an R-GCN model (paper Eq. 2) is pre-trained
//! to predict the reward of circuit graphs and its encoder is then reused as
//! the circuit / block feature provider of the RL floorplanning agent.
//!
//! * [`RgcnLayer`] — one relational graph convolution layer with explicit
//!   forward / backward passes,
//! * [`RgcnEncoder`] — 4 layers + node mean aggregation producing
//!   32-dimensional node and graph embeddings,
//! * [`RewardModel`] — encoder + 5-layer MLP head for the supervised reward
//!   regression (paper Fig. 3),
//! * [`dataset`] — floorplan/reward dataset generation (paper: 21 600 samples
//!   labelled by metaheuristic optimizers; the labeller is injectable),
//! * [`train`] — the pre-training loop with train/validation tracking.
//!
//! # Examples
//!
//! ```
//! use afp_circuit::{generators, CircuitGraph, NODE_FEATURE_DIM};
//! use afp_gnn::RgcnEncoder;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut encoder = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
//! let graph = CircuitGraph::from_circuit(&generators::ota8());
//! let embedding = encoder.encode(&graph);
//! assert_eq!(embedding.graph_embedding.len(), 32);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
mod encoder;
mod reward_model;
mod rgcn;
pub mod train;

pub use dataset::{generate_dataset, generate_default_dataset, greedy_floorplan, LabeledGraph};
pub use encoder::{CircuitEmbedding, RgcnEncoder, EMBEDDING_DIM};
pub use reward_model::RewardModel;
pub use rgcn::RgcnLayer;
pub use train::{pretrain, pretrain_with_labeler, PretrainConfig, PretrainResult};

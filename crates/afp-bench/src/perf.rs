//! Shared helpers of the perf harness: deterministic workloads and a small
//! median timer used by both the `pack` criterion bench and the
//! `bench_snapshot` binary, so the two always measure the same thing.

use std::time::Instant;

use afp_circuit::{generators, BlockId, BlockKind, Circuit, NetClass, Shape, ShapeSet};
use afp_layout::{Canvas, Cell, Floorplan, SequencePair, GRID_SIZE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Block counts the packing benches sweep: the paper's circuits are 10–19
/// blocks; 50–200 probe the scaling regime the ROADMAP targets.
pub const PACK_SIZES: [usize; 5] = [10, 19, 50, 100, 200];

/// Block counts of the large-n workload tier: synthetic circuits past every
/// historical 64-element ceiling, run end to end through the full incremental
/// cost pipeline (multi-word grids, spilled metric masks) by the
/// `bench_snapshot` `large_n` section and the CI gates.
pub const LARGE_N_SIZES: [usize; 3] = [200, 500, 1000];

/// Deterministic random sequence pair with `n` blocks.
pub fn random_pair(n: usize, seed: u64) -> SequencePair {
    let mut rng = StdRng::seed_from_u64(seed);
    let shapes: Vec<Shape> = (0..n)
        .map(|_| Shape::new(rng.gen_range(1.0..25.0), rng.gen_range(1.0..25.0)))
        .collect();
    let mut sp = SequencePair::identity(shapes);
    sp.positive.shuffle(&mut rng);
    sp.negative.shuffle(&mut rng);
    sp
}

/// Deterministic synthetic circuit with exactly `n` blocks (chained by
/// two-pin nets), for workloads that need block counts beyond the paper's
/// 19-block ceiling — e.g. the `snap` (grid realization) bench.
pub fn synthetic_circuit(n: usize) -> Circuit {
    let mut rng = StdRng::seed_from_u64(0x51AB ^ n as u64);
    let names: Vec<String> = (0..n).map(|i| format!("B{i}")).collect();
    let mut builder = Circuit::builder(format!("synthetic-{n}"));
    for name in &names {
        builder = builder.block(
            name,
            BlockKind::CurrentMirror,
            rng.gen_range(4.0..64.0),
            3,
        );
    }
    for w in names.windows(2) {
        builder = builder.net(
            &format!("n_{}_{}", &w[0], &w[1]),
            &[(w[0].as_str(), "d"), (w[1].as_str(), "s")],
            NetClass::Signal,
        );
    }
    builder.build().expect("synthetic circuit is valid")
}

/// The grid-realization workload of the `snap` bench / snapshot: a synthetic
/// `n`-block circuit, its canvas and a deterministic random sequence pair.
pub fn snap_workload(n: usize, seed: u64) -> (Circuit, Canvas, SequencePair) {
    let circuit = synthetic_circuit(n);
    let canvas = Canvas::for_circuit(&circuit);
    (circuit, canvas, random_pair(n, seed))
}

/// The positional-mask workload of the `masks` bench / snapshot: the largest
/// paper circuit (Bias-2, 19 blocks) with the first half of its blocks
/// placed in rows, plus the next pending block and its candidate shapes —
/// the state an RL env step or mask-dataset build sees mid-episode.
pub fn masks_workload() -> (Circuit, Floorplan, BlockId, ShapeSet) {
    let circuit = generators::bias19();
    let canvas = Canvas::for_circuit(&circuit);
    let sets = afp_circuit::shapes::shape_sets(&circuit);
    let order = circuit.blocks_by_decreasing_area();
    let mut fp = Floorplan::new(canvas);
    let (mut x, mut y, mut row_h) = (0usize, 0usize, 0usize);
    for &id in order.iter().take(order.len() / 2) {
        let set = &sets[id.index()];
        let shape = set.shape(set.most_square());
        let (gw, gh) = fp.grid_footprint(&shape);
        if x + gw > GRID_SIZE {
            x = 0;
            y += row_h + 1;
            row_h = 0;
        }
        fp.place(id, set.most_square(), shape, Cell::new(x, y))
            .expect("row placement fits");
        x += gw + 1;
        row_h = row_h.max(gh);
    }
    let block = order[order.len() / 2];
    let shapes = sets[block.index()];
    (circuit, fp, block, shapes)
}

/// Applies one SA-style move to a sequence pair in place: swap two blocks in
/// `s⁺`, in `s⁻`, in both, or re-shape one block — the perturbation stream
/// the incremental realization engine is benchmarked against.
pub fn perturb_pair<R: Rng + ?Sized>(sp: &mut SequencePair, rng: &mut R) {
    let n = sp.positive.len();
    if n < 2 {
        return;
    }
    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
    match rng.gen_range(0..4) {
        0 => sp.positive.swap(i, j),
        1 => sp.negative.swap(i, j),
        2 => {
            sp.positive.swap(i, j);
            let (k, l) = (rng.gen_range(0..n), rng.gen_range(0..n));
            sp.negative.swap(k, l);
        }
        _ => {
            sp.shapes[i] = Shape::new(
                rng.gen_range(1.0..25.0),
                rng.gen_range(1.0..25.0),
            );
        }
    }
}

/// Median nanoseconds per call of `f`: calibrates a batch size targeting
/// ~10 ms, then reports the median of 15 timed batches.
pub fn median_ns<F: FnMut()>(mut f: F) -> f64 {
    // Calibrate.
    let mut iters = 1u64;
    let per_iter_ns = loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 5 || iters >= 1 << 22 {
            break elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 4;
    };
    let batch = ((10_000_000.0 / per_iter_ns.max(1.0)).round() as u64).max(1);
    // Measure.
    let mut samples: Vec<f64> = (0..15)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pair_is_a_permutation() {
        let sp = random_pair(32, 7);
        let mut pos = sp.positive.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..32).collect::<Vec<_>>());
        assert_eq!(sp.shapes.len(), 32);
        // Deterministic per seed.
        assert_eq!(sp, random_pair(32, 7));
    }

    #[test]
    fn median_ns_returns_positive_time() {
        let mut acc = 0u64;
        let ns = median_ns(|| acc = acc.wrapping_add(std::hint::black_box(1)));
        assert!(ns > 0.0);
    }
}

//! Reproduction of the paper's figures: the dead-space / wire masks (Fig. 5),
//! the HCL training curves (Fig. 6) and the placed-and-routed driver layout
//! (Fig. 7).

use afp_circuit::{generators, shapes::shape_sets};
use afp_core::LayoutPipeline;
use afp_gnn::{pretrain, PretrainConfig};
use afp_layout::{export, masks, metrics, Canvas, Floorplan};
use afp_rl::{train, train_with_encoder, EpochStats, TrainConfig};

use crate::ExperimentScale;

/// The Fig. 5 artefacts: ASCII renderings (and raw values) of the dead-space
/// and wire masks for a partially placed OTA.
#[derive(Debug)]
pub struct Fig5Masks {
    /// Circuit used for the illustration.
    pub circuit: String,
    /// The block whose masks are shown.
    pub block: String,
    /// Raw dead-space mask values (32×32, row-major).
    pub dead_space_mask: Vec<f32>,
    /// Raw wire mask values (32×32, row-major).
    pub wire_mask: Vec<f32>,
    /// ASCII rendering of the dead-space mask.
    pub dead_space_ascii: String,
    /// ASCII rendering of the wire mask.
    pub wire_ascii: String,
    /// ASCII rendering of the partial placement itself.
    pub placement_ascii: String,
}

/// Builds the Fig. 5 masks: the OTA-2 circuit with its two largest blocks
/// placed and the masks computed for the next block in placement order.
pub fn fig5_masks() -> Fig5Masks {
    let circuit = generators::ota8();
    let canvas = Canvas::for_circuit(&circuit);
    let mut floorplan = Floorplan::new(canvas);
    let order = circuit.blocks_by_decreasing_area();
    let sets = shape_sets(&circuit);
    // Place the two largest blocks greedily (adjacent near the origin).
    let mut x = 0usize;
    for &block in order.iter().take(2) {
        let shape = sets[block.index()].shape(sets[block.index()].most_square());
        let (gw, _) = floorplan.grid_footprint(&shape);
        floorplan
            .place(block, sets[block.index()].most_square(), shape, afp_layout::Cell::new(x, 0))
            .expect("placement fits");
        x += gw + 1;
    }
    let next = order[2];
    let shape = sets[next.index()].shape(sets[next.index()].most_square());
    let dead_space_mask = masks::dead_space_mask(&circuit, &floorplan, next, &shape);
    let wire_mask = masks::wire_mask(&circuit, &floorplan, next, &shape);
    Fig5Masks {
        circuit: circuit.name.clone(),
        block: circuit.block(next).map(|b| b.name.clone()).unwrap_or_default(),
        dead_space_ascii: export::ascii_mask(&dead_space_mask),
        wire_ascii: export::ascii_mask(&wire_mask),
        placement_ascii: export::ascii_floorplan(&floorplan),
        dead_space_mask,
        wire_mask,
    }
}

/// The Fig. 6 artefacts: the per-update mean episode reward and approximate KL
/// divergence of an HCL training run, plus a CSV rendering.
#[derive(Debug)]
pub struct Fig6Curves {
    /// One entry per PPO update.
    pub history: Vec<EpochStats>,
    /// CSV rendering (`epoch,stage,circuit,episode_reward_mean,approx_kl`).
    pub csv: String,
}

/// Runs the curriculum training and records the two curves of Fig. 6.
///
/// Quick scale: a miniature curriculum over the three smallest training
/// circuits with the reduced policy. Paper scale: the full five-circuit
/// curriculum with the paper's architecture and 4096 episodes per circuit.
pub fn fig6_training_curves(scale: ExperimentScale) -> Fig6Curves {
    let history = match scale {
        ExperimentScale::Quick => {
            let config = TrainConfig {
                episodes_per_circuit: 12,
                episodes_per_update: 4,
                ..TrainConfig::small()
            };
            let circuits = vec![generators::ota3(), generators::bias3(), generators::ota5()];
            train(&circuits, &config).history
        }
        ExperimentScale::Paper => {
            let pretrained = pretrain(&PretrainConfig::paper());
            let config = TrainConfig::paper();
            train_with_encoder(
                pretrained.model.into_encoder(),
                &generators::training_set(),
                &config,
            )
            .history
        }
    };
    let mut csv = String::from("epoch,stage,circuit,episode_reward_mean,approx_kl,completion_rate\n");
    for h in &history {
        csv.push_str(&format!(
            "{},{},{},{:.4},{:.6},{:.3}\n",
            h.epoch, h.stage, h.circuit, h.episode_reward_mean, h.approx_kl, h.completion_rate
        ));
    }
    Fig6Curves { history, csv }
}

/// The Fig. 7 artefacts: the placed and globally routed driver layout.
#[derive(Debug)]
pub struct Fig7Layout {
    /// SVG rendering of the placement with the OARSMT routes overlaid
    /// (panels (a)/(b) of the figure).
    pub svg: String,
    /// ASCII rendering of the placement grid.
    pub ascii: String,
    /// Final layout area in µm².
    pub area_um2: f64,
    /// Routed wirelength in µm.
    pub wirelength_um: f64,
    /// Number of routing channels extracted.
    pub channels: usize,
    /// Floorplan HPWL in µm (the proxy the RL agent optimized).
    pub hpwl_um: f64,
}

/// Produces the Fig. 7 layout for the 17-structure driver.
pub fn fig7_layout(scale: ExperimentScale) -> Fig7Layout {
    let circuit = generators::driver();
    let mut pipeline = match scale {
        ExperimentScale::Quick => LayoutPipeline::with_greedy(),
        ExperimentScale::Paper => {
            let pretrained = pretrain(&PretrainConfig::paper());
            let trained = train_with_encoder(
                pretrained.model.into_encoder(),
                &generators::training_set(),
                &TrainConfig::paper(),
            );
            LayoutPipeline::with_agent(trained.agent)
        }
    };
    let result = pipeline.run(&circuit);
    Fig7Layout {
        svg: result.to_svg(),
        ascii: result.to_ascii(),
        area_um2: result.layout.area_um2,
        wirelength_um: result.layout.wirelength_um,
        channels: result.layout.channels.len(),
        hpwl_um: metrics::hpwl(&circuit, &result.floorplan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_masks_are_normalized_and_rendered() {
        let fig = fig5_masks();
        assert_eq!(fig.dead_space_mask.len(), 32 * 32);
        assert_eq!(fig.wire_mask.len(), 32 * 32);
        assert!(fig.dead_space_mask.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(fig.wire_mask.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(fig.dead_space_ascii.lines().count(), 32);
        assert!(!fig.block.is_empty());
        // Both masks must show contrast (not a constant image).
        let ds_min = fig.dead_space_mask.iter().cloned().fold(f32::MAX, f32::min);
        let ds_max = fig.dead_space_mask.iter().cloned().fold(f32::MIN, f32::max);
        assert!(ds_max > ds_min);
    }

    #[test]
    fn fig6_quick_curves_have_both_series() {
        let fig = fig6_training_curves(ExperimentScale::Quick);
        assert!(!fig.history.is_empty());
        assert!(fig.csv.starts_with("epoch,stage,circuit"));
        assert_eq!(fig.csv.lines().count(), fig.history.len() + 1);
        for h in &fig.history {
            assert!(h.episode_reward_mean.is_finite());
            assert!(h.approx_kl.is_finite());
        }
        // The curriculum reaches at least the second stage.
        assert!(fig.history.iter().any(|h| h.stage >= 1));
    }

    #[test]
    fn fig7_layout_is_routed_and_rendered() {
        let fig = fig7_layout(ExperimentScale::Quick);
        assert!(fig.svg.contains("polyline"), "no routed nets in the SVG");
        assert!(fig.area_um2 > 0.0);
        assert!(fig.wirelength_um > 0.0);
        assert!(fig.channels > 0);
        assert!(fig.hpwl_um > 0.0);
    }
}

//! # afp-bench — reproduction harness for every table and figure of the paper
//!
//! Each experiment of the paper's §V has a function here that regenerates it
//! (at a configurable scale) and a binary in `src/bin/` that prints it:
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Table I (methods × circuits comparison) | [`table1::run`] | `table1_comparison` |
//! | Table II (automated vs manual layouts) | [`table2::run`] | `table2_layouts` |
//! | Fig. 5 (dead-space and wire masks) | [`figures::fig5_masks`] | `fig5_masks` |
//! | Fig. 6 (HCL training curves) | [`figures::fig6_training_curves`] | `fig6_training_curves` |
//! | Fig. 7 (placed + routed driver layout) | [`figures::fig7_layout`] | `fig7_layout_render` |
//! | R-GCN pre-training (§IV-C) | [`pretraining::run`] | `rgcn_pretrain` |
//! | Design-choice ablations (§IV) | [`ablations::run`] | `ablations` |
//!
//! Every entry point takes an [`ExperimentScale`]: `quick` runs in seconds on
//! a laptop and is used by the test-suite and CI; `paper` uses the full
//! episode / sample budgets reported by the authors (hours of CPU time).

#![warn(missing_docs)]

use std::fmt;

/// How much compute to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Seconds-scale configuration for tests and smoke runs.
    Quick,
    /// The budgets reported in the paper (hours of CPU time).
    Paper,
}

impl ExperimentScale {
    /// Parses `--paper` style command-line arguments.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        if args.into_iter().any(|a| a == "--paper" || a == "--full") {
            ExperimentScale::Paper
        } else {
            ExperimentScale::Quick
        }
    }

    /// Returns `true` for the quick scale.
    pub fn is_quick(self) -> bool {
        self == ExperimentScale::Quick
    }
}

impl fmt::Display for ExperimentScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentScale::Quick => write!(f, "quick"),
            ExperimentScale::Paper => write!(f, "paper"),
        }
    }
}

pub mod ablations;
pub mod figures;
pub mod perf;
pub mod pretraining;
pub mod table1;
pub mod table2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(
            ExperimentScale::from_args(vec!["--paper".to_string()]),
            ExperimentScale::Paper
        );
        assert_eq!(
            ExperimentScale::from_args(Vec::<String>::new()),
            ExperimentScale::Quick
        );
        assert!(ExperimentScale::Quick.is_quick());
        assert_eq!(ExperimentScale::Paper.to_string(), "paper");
    }
}

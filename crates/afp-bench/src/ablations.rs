//! Ablation study over the design choices the paper's method section calls
//! out: the dead-space mask, the wire mask, the R-GCN embeddings and the
//! hybrid curriculum.
//!
//! Each ablation trains an agent under identical budgets and evaluates it
//! zero-shot on a held-out circuit, so differences in final reward isolate the
//! contribution of the ablated component.

use afp_circuit::generators;
use afp_core::Summary;
use afp_layout::metrics;
use afp_rl::ablation::{all, apply, Ablation};
use afp_rl::{train_agent, FloorplanAgent, TrainConfig};

use crate::ExperimentScale;

/// One row of the ablation report.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Ablation name.
    pub name: String,
    /// What was removed or changed.
    pub description: String,
    /// Zero-shot reward on the held-out circuit over the evaluation seeds.
    pub reward: Summary,
    /// Zero-shot HPWL (µm).
    pub hpwl_um: Summary,
    /// Zero-shot dead space (%).
    pub dead_space_pct: Summary,
}

/// The ablation study output.
#[derive(Debug)]
pub struct AblationResult {
    /// One row per ablation, the full method first.
    pub rows: Vec<AblationRow>,
    /// Plain-text rendering.
    pub rendered: String,
}

fn training_budget(scale: ExperimentScale) -> TrainConfig {
    match scale {
        ExperimentScale::Quick => TrainConfig {
            episodes_per_circuit: 8,
            episodes_per_update: 4,
            ..TrainConfig::small()
        },
        ExperimentScale::Paper => TrainConfig::paper(),
    }
}

/// Runs the ablation study: every ablation gets the same training budget on
/// the small curriculum and is evaluated zero-shot on the 8-block OTA.
pub fn run(scale: ExperimentScale) -> AblationResult {
    run_with(scale, &all(), 2)
}

/// Runs a specific set of ablations with an explicit number of evaluation
/// seeds (exposed for the tests).
pub fn run_with(scale: ExperimentScale, ablations: &[Ablation], eval_seeds: usize) -> AblationResult {
    let held_out = generators::ota8();
    let mut rows = Vec::new();
    for ablation in ablations {
        let mut config = training_budget(scale);
        config.agent = apply(ablation, config.agent);
        let curriculum = if ablation.use_curriculum {
            vec![generators::ota3(), generators::bias3()]
        } else {
            vec![held_out.clone()]
        };
        let agent = FloorplanAgent::new(config.agent.clone());
        let mut trained = train_agent(agent, &curriculum, &config);
        let mut rewards = Vec::new();
        let mut hpwls = Vec::new();
        let mut dead_spaces = Vec::new();
        for _seed in 0..eval_seeds.max(1) {
            let solved = trained.agent.solve(&held_out);
            let m = metrics::metrics(&held_out, &solved.floorplan);
            rewards.push(solved.reward);
            hpwls.push(m.hpwl_um);
            dead_spaces.push(m.dead_space * 100.0);
        }
        rows.push(AblationRow {
            name: ablation.name.to_string(),
            description: ablation.description.to_string(),
            reward: Summary::of(&rewards),
            hpwl_um: Summary::of(&hpwls),
            dead_space_pct: Summary::of(&dead_spaces),
        });
    }
    let mut rendered = String::from("Ablation study — zero-shot evaluation on OTA-2 (8 blocks)\n");
    rendered.push_str(&format!(
        "{:<22}{:>16}{:>16}{:>18}\n",
        "Ablation", "Reward", "HPWL (um)", "Dead space (%)"
    ));
    for row in &rows {
        rendered.push_str(&format!(
            "{:<22}{:>16}{:>16}{:>18}\n",
            row.name,
            row.reward.to_string(),
            row.hpwl_um.to_string(),
            row.dead_space_pct.to_string()
        ));
    }
    AblationResult { rows, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_rl::ablation::full_method;

    #[test]
    fn single_ablation_runs_end_to_end() {
        let result = run_with(ExperimentScale::Quick, &[full_method()], 1);
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].name, "full");
        assert!(result.rows[0].reward.iq_mean.is_finite());
        assert!(result.rendered.contains("Ablation study"));
    }

    #[test]
    fn ablation_list_matches_rl_crate() {
        assert_eq!(all().len(), 5);
    }
}

//! Reproduction of **Table I**: comparative analysis of the R-GCN + RL method
//! (zero-shot and fine-tuned) against SA, GA, PSO and the RL-SA / sequence-pair
//! RL predecessors, across the six evaluation circuits.
//!
//! For every (circuit, method, seed) combination the harness records the same
//! four metrics the paper reports — runtime, dead space, HPWL and reward — and
//! aggregates them as interquartile mean ± standard deviation.

use afp_circuit::generators::{self, BenchmarkCircuit};
use afp_circuit::NODE_FEATURE_DIM;
use afp_core::{format_table_one, MethodMeasurements, TableOneRow};
use afp_gnn::{pretrain, PretrainConfig, RgcnEncoder};
use afp_layout::metrics;
use afp_metaheuristics::Baseline;
use afp_rl::{train_with_encoder, AgentConfig, FloorplanAgent, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ExperimentScale;

/// Configuration of the Table I sweep.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Number of repeated runs per (circuit, method).
    pub seeds: usize,
    /// Fine-tuning budgets (in episodes) for the R-GCN RL columns; `0` is the
    /// zero-shot column.
    pub fine_tune_budgets: Vec<usize>,
    /// R-GCN pre-training configuration.
    pub pretrain: PretrainConfig,
    /// Curriculum training configuration for the shared agent.
    pub train: TrainConfig,
    /// Baseline algorithms and their budgets.
    pub baselines: Vec<Baseline>,
    /// Circuits to evaluate.
    pub circuits: Vec<BenchmarkCircuit>,
}

impl Table1Config {
    /// A configuration that reproduces the table's structure in a couple of
    /// minutes on a laptop (used by the default binary invocation).
    pub fn quick() -> Self {
        Table1Config {
            seeds: 3,
            fine_tune_budgets: vec![0, 1, 8],
            pretrain: PretrainConfig {
                samples: 16,
                epochs: 4,
                ..PretrainConfig::small()
            },
            train: TrainConfig {
                episodes_per_circuit: 10,
                episodes_per_update: 5,
                ..TrainConfig::small()
            },
            // Full (Table I) baseline budgets: they are still fast in a
            // release build and give the runtime ordering the paper reports.
            baselines: Baseline::all_table1(),
            circuits: generators::evaluation_set(),
        }
    }

    /// The paper-scale configuration (hours of CPU time): 4096 training
    /// episodes per circuit, 0/1/100/1000-shot fine-tuning, Table I baseline
    /// budgets.
    pub fn paper() -> Self {
        Table1Config {
            seeds: 10,
            fine_tune_budgets: vec![0, 1, 100, 1000],
            pretrain: PretrainConfig::paper(),
            train: TrainConfig::paper(),
            baselines: Baseline::all_table1(),
            circuits: generators::evaluation_set(),
        }
    }

    /// A minimal configuration used by the unit tests (single circuit, one
    /// baseline, one seed).
    pub fn tiny() -> Self {
        Table1Config {
            seeds: 1,
            fine_tune_budgets: vec![0, 1],
            pretrain: PretrainConfig {
                samples: 4,
                epochs: 1,
                ..PretrainConfig::small()
            },
            train: TrainConfig {
                episodes_per_circuit: 2,
                episodes_per_update: 2,
                ..TrainConfig::small()
            },
            baselines: vec![Baseline::Sa(afp_metaheuristics::SaConfig {
                iterations: 60,
                ..afp_metaheuristics::SaConfig::small()
            })],
            circuits: vec![BenchmarkCircuit {
                circuit: generators::ota5(),
                seen_during_training: true,
            }],
        }
    }

    /// Builds the configuration for an [`ExperimentScale`].
    pub fn for_scale(scale: ExperimentScale) -> Self {
        match scale {
            ExperimentScale::Quick => Table1Config::quick(),
            ExperimentScale::Paper => Table1Config::paper(),
        }
    }
}

/// The output of the Table I reproduction.
#[derive(Debug)]
pub struct Table1Result {
    /// One row group per circuit, with one summary per method column.
    pub rows: Vec<TableOneRow>,
    /// Plain-text rendering in the paper's layout.
    pub rendered: String,
}

/// Clones an agent through its state dicts (the policy type is not `Clone`
/// because it owns boxed layers), overriding the configuration — typically to
/// change the sampling seed between repeated runs.
fn clone_agent_with_config(agent: &FloorplanAgent, config: AgentConfig) -> FloorplanAgent {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut encoder = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
    encoder
        .load_state_dict(&agent.encoder().state_dict())
        .expect("identical encoder architecture");
    let mut copy = FloorplanAgent::with_encoder(encoder, config);
    copy.policy_mut()
        .load_state_dict(&agent.policy().state_dict())
        .expect("identical policy architecture");
    copy
}

/// Trains the shared agent used by all "R-GCN RL" columns: R-GCN pre-training
/// followed by curriculum PPO on the training set.
pub fn train_reference_agent(config: &Table1Config) -> FloorplanAgent {
    let pretrained = pretrain(&config.pretrain);
    let encoder = pretrained.model.into_encoder();
    let result = train_with_encoder(encoder, &generators::training_set(), &config.train);
    result.agent
}

/// Runs the full Table I sweep.
pub fn run(scale: ExperimentScale) -> Table1Result {
    run_with_config(&Table1Config::for_scale(scale))
}

/// Runs the sweep with an explicit configuration.
pub fn run_with_config(config: &Table1Config) -> Table1Result {
    let reference_agent = train_reference_agent(config);
    let mut rows = Vec::new();

    for benchmark in &config.circuits {
        // Paper §V-B: "No constraints are imposed on any circuit" for the
        // Table I comparison, so the evaluation copies are stripped of their
        // symmetry / alignment constraints (training keeps them).
        let mut circuit = benchmark.circuit.clone();
        circuit.constraints = afp_circuit::ConstraintSet::new();
        let circuit = &circuit;
        let mut methods: Vec<(String, afp_core::MethodSummary)> = Vec::new();

        // R-GCN RL columns: zero-shot and fine-tuned variants.
        for &budget in &config.fine_tune_budgets {
            let mut measurements = MethodMeasurements::new();
            for seed in 0..config.seeds {
                // Clone the reference agent through its state dicts so each
                // seed fine-tunes an identical copy with different sampling.
                let mut cfg = reference_agent.config().clone();
                cfg.seed = seed as u64;
                let mut agent = clone_agent_with_config(&reference_agent, cfg);
                let started = std::time::Instant::now();
                if budget > 0 {
                    agent.fine_tune(circuit, budget);
                }
                let solve = agent.solve(circuit);
                let runtime = started.elapsed().as_secs_f64();
                measurements.push(
                    runtime,
                    solve.metrics.dead_space * 100.0,
                    solve.metrics.hpwl_um,
                    solve.reward,
                );
            }
            let label = if budget == 0 {
                "R-GCN RL 0-shot".to_string()
            } else {
                format!("R-GCN RL {budget}-shot")
            };
            methods.push((label, measurements.summarize()));
        }

        // Baseline columns.
        for baseline in &config.baselines {
            let mut measurements = MethodMeasurements::new();
            for seed in 0..config.seeds {
                let result = baseline.run(circuit, seed as u64);
                let m = metrics::metrics(circuit, &result.floorplan);
                measurements.push(
                    result.runtime_s,
                    m.dead_space * 100.0,
                    m.hpwl_um,
                    result.reward,
                );
            }
            methods.push((baseline.name().to_string(), measurements.summarize()));
        }

        rows.push(TableOneRow {
            circuit: circuit.name.clone(),
            num_structures: circuit.num_blocks(),
            unseen: !benchmark.seen_during_training,
            methods,
        });
    }

    let rendered = format_table_one(&rows);
    Table1Result { rows, rendered }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_all_method_columns() {
        let result = run_with_config(&Table1Config::tiny());
        assert_eq!(result.rows.len(), 1);
        let row = &result.rows[0];
        assert_eq!(row.circuit, "OTA-1");
        assert_eq!(row.num_structures, 5);
        // 2 RL budgets + 1 baseline.
        assert_eq!(row.methods.len(), 3);
        assert!(row.methods.iter().any(|(n, _)| n == "R-GCN RL 0-shot"));
        assert!(row.methods.iter().any(|(n, _)| n == "SA"));
        for (name, summary) in &row.methods {
            assert!(summary.reward.iq_mean.is_finite(), "{name}");
            assert!(summary.runtime_s.iq_mean >= 0.0, "{name}");
        }
        assert!(result.rendered.contains("TABLE I"));
        assert!(result.rendered.contains("OTA-1"));
    }

    #[test]
    fn configs_match_paper_protocol() {
        let paper = Table1Config::paper();
        assert_eq!(paper.fine_tune_budgets, vec![0, 1, 100, 1000]);
        assert_eq!(paper.circuits.len(), 6);
        assert_eq!(paper.train.episodes_per_circuit, 4096);
        let quick = Table1Config::quick();
        assert_eq!(quick.circuits.len(), 6);
        assert_eq!(quick.baselines.len(), 5);
    }
}

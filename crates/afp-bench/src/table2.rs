//! Reproduction of **Table II**: area, dead space and layout-generation time
//! of the automated flow (floorplanning + OARSMT routing + procedural
//! completion) versus the paper's recorded manual-design references, for the
//! OTA, Bias-1 and Driver circuits.

use afp_circuit::{generators, Circuit};
use afp_core::{format_table_two, paper_manual_references, LayoutPipeline, TableTwoRow};
use afp_gnn::{pretrain, PretrainConfig};
use afp_rl::{train_with_encoder, TrainConfig};

use crate::ExperimentScale;

/// The manual-improvement hours the paper reports on top of the automatically
/// generated template (0.17 h for the OTA, 1 h for Bias-1, 20 h for the
/// Driver). They describe designer effort on the original testbed and are
/// reused verbatim so the total-time comparison keeps the paper's structure.
pub fn paper_manual_improvement_hours() -> Vec<(&'static str, f64)> {
    vec![("OTA", 0.17), ("Bias-1", 1.0), ("Driver", 20.0)]
}

/// The three circuits of Table II: the 3-block OTA, the 9-block bias network
/// and the 17-block driver.
pub fn table2_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("OTA", generators::ota3()),
        ("Bias-1", generators::bias9()),
        ("Driver", generators::driver()),
    ]
}

/// The output of the Table II reproduction.
#[derive(Debug)]
pub struct Table2Result {
    /// One row per circuit.
    pub rows: Vec<TableTwoRow>,
    /// Plain-text rendering.
    pub rendered: String,
}

/// Runs the Table II flow. At quick scale the floorplanner is the greedy
/// constructive placer (seconds); at paper scale a curriculum-trained R-GCN RL
/// agent generates every floorplan, as in the paper.
pub fn run(scale: ExperimentScale) -> Table2Result {
    // One pipeline serves all three circuits: the floorplanning method inside
    // it is stateless across `run` calls (the agent's policy is frozen at
    // inference time).
    let mut pipeline = match scale {
        ExperimentScale::Quick => LayoutPipeline::with_greedy(),
        ExperimentScale::Paper => {
            let pretrained = pretrain(&PretrainConfig::paper());
            let trained = train_with_encoder(
                pretrained.model.into_encoder(),
                &generators::training_set(),
                &TrainConfig::paper(),
            );
            LayoutPipeline::with_agent(trained.agent)
        }
    };

    let manual_refs = paper_manual_references();
    let improvement_hours = paper_manual_improvement_hours();
    let mut rows = Vec::new();
    for (name, circuit) in table2_circuits() {
        let result = pipeline.run(&circuit);
        let manual = manual_refs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| *m)
            .expect("manual reference exists");
        let improvement = improvement_hours
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| *h)
            .unwrap_or(0.0);
        rows.push(TableTwoRow {
            circuit: name.to_string(),
            ours_area_um2: result.layout.area_um2,
            ours_dead_space_pct: result.layout.dead_space * 100.0,
            template_time_s: result.report.template_time_s,
            manual_improvement_h: improvement,
            manual,
        });
    }
    let rendered = format_table_two(&rows);
    Table2Result { rows, rendered }
}

/// Aggregate headline numbers of the paper's abstract: mean layout-time
/// reduction and mean area change versus manual design.
pub fn headline_numbers(rows: &[TableTwoRow]) -> (f64, f64) {
    let time_reduction: f64 =
        rows.iter().map(|r| -r.time_delta_pct()).sum::<f64>() / rows.len().max(1) as f64;
    let area_change: f64 =
        rows.iter().map(|r| r.area_delta_pct()).sum::<f64>() / rows.len().max(1) as f64;
    (time_reduction, area_change)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_three_rows() {
        let result = run(ExperimentScale::Quick);
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert!(row.ours_area_um2 > 0.0, "{}", row.circuit);
            assert!(row.ours_dead_space_pct >= 0.0 && row.ours_dead_space_pct <= 100.0);
            assert!(row.template_time_s >= 0.0);
            // The automated flow is orders of magnitude faster than manual.
            assert!(row.total_time_h() < row.manual.layout_time_h);
        }
        assert!(result.rendered.contains("TABLE II"));
        assert!(result.rendered.contains("Driver"));
    }

    #[test]
    fn headline_numbers_show_time_reduction() {
        let result = run(ExperimentScale::Quick);
        let (time_reduction, _area_change) = headline_numbers(&result.rows);
        // The paper reports a 67.3% mean layout-time reduction; any positive
        // reduction preserves the headline direction.
        assert!(time_reduction > 0.0, "time reduction {time_reduction}");
    }

    #[test]
    fn improvement_hours_cover_all_circuits() {
        let names: Vec<&str> = paper_manual_improvement_hours().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["OTA", "Bias-1", "Driver"]);
    }
}

//! Reproduction of the R-GCN supervised pre-training stage (paper §IV-C,
//! Fig. 3): dataset generation, reward regression and the resulting encoder.

use afp_gnn::{pretrain_with_labeler, PretrainConfig, PretrainResult};
use afp_layout::metrics;
use afp_metaheuristics::{simulated_annealing, SaConfig};

use crate::ExperimentScale;

/// Summary of a pre-training run.
#[derive(Debug)]
pub struct PretrainSummary {
    /// The underlying result (trained model and loss curves).
    pub result: PretrainResult,
    /// Plain-text report.
    pub rendered: String,
}

/// Labels a circuit with the reward of an SA-optimized floorplan — the same
/// kind of metaheuristic labelling the paper's 21 600-sample dataset uses.
pub fn sa_reward_label(circuit: &afp_circuit::Circuit) -> f64 {
    let result = simulated_annealing(
        circuit,
        &SaConfig {
            iterations: 600,
            ..SaConfig::small()
        },
    );
    result.reward
}

/// Runs the pre-training reproduction.
///
/// Quick scale uses the greedy labeller and a small dataset; paper scale uses
/// SA labelling and the full 21 600-sample dataset.
pub fn run(scale: ExperimentScale) -> PretrainSummary {
    let (config, use_sa): (PretrainConfig, bool) = match scale {
        ExperimentScale::Quick => (
            PretrainConfig {
                samples: 32,
                epochs: 6,
                ..PretrainConfig::small()
            },
            false,
        ),
        ExperimentScale::Paper => (PretrainConfig::paper(), true),
    };
    let result = if use_sa {
        pretrain_with_labeler(&config, &sa_reward_label)
    } else {
        afp_gnn::pretrain(&config)
    };
    let mut rendered = String::new();
    rendered.push_str("R-GCN reward-prediction pre-training (paper §IV-C)\n");
    rendered.push_str(&format!(
        "dataset: {} train / {} validation samples\n",
        result.train_size, result.validation_size
    ));
    rendered.push_str("epoch  train MSE  validation MSE\n");
    for (i, (t, v)) in result
        .train_losses
        .iter()
        .zip(result.validation_losses.iter())
        .enumerate()
    {
        rendered.push_str(&format!("{i:>5}  {t:>9.4}  {v:>14.4}\n"));
    }
    rendered.push_str(&format!(
        "final validation MSE: {:.4}\n",
        result.final_validation_mse()
    ));
    PretrainSummary { result, rendered }
}

/// Convenience check used by tests and the binary: the label distribution of a
/// labeller over the benchmark circuits (min / mean / max reward).
pub fn label_distribution(labeler: &dyn Fn(&afp_circuit::Circuit) -> f64) -> (f64, f64, f64) {
    let circuits = afp_circuit::generators::dataset_families();
    let labels: Vec<f64> = circuits.iter().map(|c| labeler(c)).collect();
    let min = labels.iter().cloned().fold(f64::MAX, f64::min);
    let max = labels.iter().cloned().fold(f64::MIN, f64::max);
    let mean = labels.iter().sum::<f64>() / labels.len() as f64;
    let _ = metrics::hpwl_lower_bound(&circuits[0]);
    (min, mean, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pretraining_learns_something() {
        let summary = run(ExperimentScale::Quick);
        assert!(summary.rendered.contains("validation MSE"));
        let first = summary.result.train_losses.first().copied().unwrap();
        let last = summary.result.train_losses.last().copied().unwrap();
        assert!(last <= first, "training loss increased: {first} → {last}");
    }

    #[test]
    fn sa_labeller_produces_plausible_rewards() {
        let reward = sa_reward_label(&afp_circuit::generators::ota3());
        assert!(reward < 0.0 && reward > -50.0, "SA label {reward}");
    }
}

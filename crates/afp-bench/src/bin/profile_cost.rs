//! Ad-hoc profile of the SA cost-evaluation pipeline on Bias-2 (19 blocks):
//! breaks one `cost_cached` evaluation into its stages so hot-path PRs can
//! see where the next order of magnitude lives.
//!
//! Usage: `cargo run --release -p afp-bench --bin profile_cost`

use afp_bench::perf::median_ns;
use afp_circuit::generators;
use afp_layout::sequence_pair::realize_floorplan;
use afp_layout::{metrics, Canvas, Floorplan, PackScratch, RewardWeights};
use afp_metaheuristics::{Candidate, CostCache, Problem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let circuit = generators::bias19();
    let problem = Problem::new(&circuit);
    let mut rng = StdRng::seed_from_u64(7);
    let mut candidate = Candidate::random(problem.num_blocks(), &mut rng);
    let mut cache = CostCache::new(&problem);

    let full_ns = median_ns(|| {
        // Perturb like SA does, so the memo misses realistically.
        let _ = candidate.perturb(&mut rng);
        let _ = problem.cost_cached(&candidate, &mut cache);
    });
    println!("perturb + cost_cached:      {full_ns:>10.1} ns  (incremental realize + metrics)");
    {
        let s = cache.realize_stats();
        let episodes = s.episodes.max(1);
        println!(
            "  realize hit rate {:5.1}%  kept/ep {:.1}  replayed/ep {:.1}  searched/ep {:.1}  rebuilds {}",
            100.0 * s.hit_rate(),
            s.kept_blocks as f64 / episodes as f64,
            s.replayed_blocks as f64 / episodes as f64,
            s.searched_blocks as f64 / episodes as f64,
            s.full_rebuilds,
        );
        let p = s.pack_stats();
        println!(
            "  pack replay rate {:5.1}%  (x {:.1}%  y {:.1}%)",
            100.0 * p.replay_rate(),
            100.0 * p.x_replayed as f64 / (p.x_replayed + p.x_swept).max(1) as f64,
            100.0 * p.y_replayed as f64 / (p.y_replayed + p.y_swept).max(1) as f64,
        );
    }
    let mut mixed_cache = CostCache::new(&problem);
    mixed_cache.set_incremental(true);
    mixed_cache.set_incremental_metrics(false);
    let mixed_ns = median_ns(|| {
        let _ = candidate.perturb(&mut rng);
        let _ = problem.cost_cached(&candidate, &mut mixed_cache);
    });
    println!("perturb + cost_cached:      {mixed_ns:>10.1} ns  (incremental realize, full metrics)");
    let mut full_cache = CostCache::new(&problem);
    full_cache.set_incremental(false);
    full_cache.set_incremental_metrics(false);
    let oracle_ns = median_ns(|| {
        let _ = candidate.perturb(&mut rng);
        let _ = problem.cost_cached(&candidate, &mut full_cache);
    });
    println!("perturb + cost_cached:      {oracle_ns:>10.1} ns  (full realize + metrics)");

    let shapes = problem.shapes_for(&candidate);
    let sp = candidate.to_sequence_pair(&shapes);
    let canvas = Canvas::for_circuit(&circuit);
    let mut scratch = PackScratch::with_capacity(problem.num_blocks());
    let mut fp = Floorplan::new(canvas);
    let realize_ns = median_ns(|| {
        realize_floorplan(
            &sp.positive,
            &sp.negative,
            &sp.shapes,
            &circuit,
            canvas,
            &mut scratch,
            &mut fp,
        )
    });
    println!("  realize_floorplan:        {realize_ns:>10.1} ns");

    // In-walk realization (candidate changes each call, as SA sees it).
    let mut walk_shapes = Vec::new();
    let mut walk_fp = Floorplan::new(canvas);
    let mut walk_cache = afp_layout::RealizeCache::new();
    let walk_inc_ns = median_ns(|| {
        let _ = candidate.perturb(&mut rng);
        problem.shapes_for_into(&candidate, &mut walk_shapes);
        afp_layout::sequence_pair::realize_floorplan_incremental(
            &candidate.positive,
            &candidate.negative,
            &walk_shapes,
            &circuit,
            canvas,
            &mut scratch,
            &mut walk_fp,
            &mut walk_cache,
        );
    });
    println!("  walk realize (incr):      {walk_inc_ns:>10.1} ns");
    let walk_full_ns = median_ns(|| {
        let _ = candidate.perturb(&mut rng);
        problem.shapes_for_into(&candidate, &mut walk_shapes);
        realize_floorplan(
            &candidate.positive,
            &candidate.negative,
            &walk_shapes,
            &circuit,
            canvas,
            &mut scratch,
            &mut walk_fp,
        );
    });
    println!("  walk realize (full):      {walk_full_ns:>10.1} ns");

    let shapes_ns = median_ns(|| {
        let _ = problem.shapes_for(&candidate);
    });
    println!("  shapes_for (alloc):       {shapes_ns:>10.1} ns");

    let hpwl_min = metrics::hpwl_lower_bound(&circuit);
    let weights = RewardWeights::default();
    let reward_ns = median_ns(|| {
        let _ = metrics::episode_reward(&circuit, &fp, hpwl_min, &weights);
    });
    println!("  episode_reward (alloc):   {reward_ns:>10.1} ns");

    let mut warm_scratch = metrics::MetricsScratch::new();
    let reward_warm_ns = median_ns(|| {
        let _ = metrics::episode_reward_with(&circuit, &fp, hpwl_min, &weights, &mut warm_scratch);
    });
    println!("  episode_reward (warm):    {reward_warm_ns:>10.1} ns");

    // Metrics stage alone on the realization walk: the dirty-set evaluation
    // (terms deferred across penalized episodes) vs the full rescan.
    let mut inc_metrics = metrics::MetricsScratch::new();
    let walk_inc_metrics_ns = median_ns(|| {
        let _ = candidate.perturb(&mut rng);
        problem.shapes_for_into(&candidate, &mut walk_shapes);
        afp_layout::sequence_pair::realize_floorplan_incremental(
            &candidate.positive,
            &candidate.negative,
            &walk_shapes,
            &circuit,
            canvas,
            &mut scratch,
            &mut walk_fp,
            &mut walk_cache,
        );
        let dirty = if walk_cache.last_was_full_rebuild() {
            metrics::DirtySet::Full
        } else {
            metrics::DirtySet::Blocks(walk_cache.dirty_blocks())
        };
        let _ = metrics::episode_reward_incremental(
            &circuit,
            &walk_fp,
            hpwl_min,
            &weights,
            &mut inc_metrics,
            dirty,
        );
    });
    println!("  walk realize + inc metrics: {walk_inc_metrics_ns:>8.1} ns");

    let hpwl_ns = median_ns(|| {
        let _ = metrics::hpwl(&circuit, &fp);
    });
    println!("    hpwl (alloc):           {hpwl_ns:>10.1} ns");

    let violations_ns = median_ns(|| {
        let _ = afp_layout::constraints::count_violations(&circuit, &fp);
    });
    println!("    count_violations:       {violations_ns:>10.1} ns");

    let has_violations_ns = median_ns(|| {
        let _ = afp_layout::constraints::has_violations(&circuit, &fp);
    });
    println!("    has_violations:         {has_violations_ns:>10.1} ns");
}

//! Regenerates **Table II**: area, dead space and layout-generation time of
//! the automated flow versus the paper's recorded manual-design references
//! for the OTA, Bias-1 and Driver circuits.
//!
//! ```bash
//! cargo run --release -p afp-bench --bin table2_layouts            # quick (greedy floorplans)
//! cargo run --release -p afp-bench --bin table2_layouts -- --paper # RL floorplans, full training
//! ```

use afp_bench::{table2, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("running the Table II flow at `{scale}` scale …");
    let result = table2::run(scale);
    println!("{}", result.rendered);
    let (time_reduction, area_change) = table2::headline_numbers(&result.rows);
    println!(
        "headline: mean layout-time reduction {:.1}% (paper: 67.3%), mean area change {:+.1}% (paper: -8.3%)",
        time_reduction, area_change
    );
}

//! Regenerates **Table I**: the comparison of the R-GCN + RL floorplanner
//! (zero-shot and fine-tuned) against SA, GA, PSO, RL-SA and sequence-pair RL
//! on the six evaluation circuits.
//!
//! ```bash
//! cargo run --release -p afp-bench --bin table1_comparison            # quick
//! cargo run --release -p afp-bench --bin table1_comparison -- --paper # full budgets
//! ```

use afp_bench::{table1, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("running the Table I sweep at `{scale}` scale …");
    let result = table1::run(scale);
    println!("{}", result.rendered);
    // Machine-readable summary (CSV) for downstream plotting.
    println!("\ncircuit,method,runtime_s,dead_space_pct,hpwl_um,reward");
    for row in &result.rows {
        for (method, summary) in &row.methods {
            println!(
                "{},{},{:.3},{:.2},{:.2},{:.3}",
                row.circuit,
                method,
                summary.runtime_s.iq_mean,
                summary.dead_space_pct.iq_mean,
                summary.hpwl_um.iq_mean,
                summary.reward.iq_mean
            );
        }
    }
}

//! Regenerates **Fig. 7**: the placed and globally routed 17-structure driver
//! layout. Writes an SVG rendering (placement + OARSMT routes) and prints the
//! ASCII placement plus the layout metrics.
//!
//! ```bash
//! cargo run --release -p afp-bench --bin fig7_layout_render            # greedy floorplan
//! cargo run --release -p afp-bench --bin fig7_layout_render -- --paper # RL floorplan
//! ```

use std::fs;

use afp_bench::{figures, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("building the driver layout at `{scale}` scale …");
    let fig = figures::fig7_layout(scale);
    let path = "fig7_driver_layout.svg";
    match fs::write(path, &fig.svg) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    println!("placement (32x32 grid):\n{}", fig.ascii);
    println!(
        "layout area: {:.1} um^2 | floorplan HPWL: {:.1} um | routed wirelength: {:.1} um | channels: {}",
        fig.area_um2, fig.hpwl_um, fig.wirelength_um, fig.channels
    );
}

//! Runs the ablation study over the method's design choices (dead-space mask,
//! wire mask, R-GCN embeddings, hybrid curriculum).
//!
//! ```bash
//! cargo run --release -p afp-bench --bin ablations            # quick budgets
//! cargo run --release -p afp-bench --bin ablations -- --paper # paper budgets
//! ```

use afp_bench::{ablations, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("running the ablation study at `{scale}` scale …");
    let result = ablations::run(scale);
    println!("{}", result.rendered);
    for row in &result.rows {
        println!("{:<22} — {}", row.name, row.description);
    }
}

//! Regenerates **Fig. 5**: the dead-space and wire masks of a partial
//! placement, rendered as ASCII heat maps (darker = larger metric increase,
//! i.e. the regions the agent is steered away from).
//!
//! ```bash
//! cargo run --release -p afp-bench --bin fig5_masks
//! ```

use afp_bench::figures;

fn main() {
    let fig = figures::fig5_masks();
    println!(
        "circuit {} — masks for the next block to place ({})\n",
        fig.circuit, fig.block
    );
    println!("partial placement:\n{}", fig.placement_ascii);
    println!("dead-space mask f_ds (darker = larger dead-space increase):\n{}", fig.dead_space_ascii);
    println!("wire mask f_w (darker = larger HPWL increase):\n{}", fig.wire_ascii);
}

//! Regenerates the R-GCN supervised pre-training stage (paper §IV-C): builds
//! the floorplan/reward dataset, trains the reward regressor and reports the
//! loss curves.
//!
//! ```bash
//! cargo run --release -p afp-bench --bin rgcn_pretrain            # small dataset, greedy labels
//! cargo run --release -p afp-bench --bin rgcn_pretrain -- --paper # 21 600 samples, SA labels
//! ```

use afp_bench::{pretraining, ExperimentScale};

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("pre-training the R-GCN reward model at `{scale}` scale …");
    let summary = pretraining::run(scale);
    println!("{}", summary.rendered);
}

//! Regenerates **Fig. 6**: the mean episode reward and approximate KL
//! divergence across the hybrid-curriculum training run, emitted as CSV (for
//! plotting) plus a coarse ASCII sparkline.
//!
//! ```bash
//! cargo run --release -p afp-bench --bin fig6_training_curves            # miniature curriculum
//! cargo run --release -p afp-bench --bin fig6_training_curves -- --paper # full 4096-episode schedule
//! ```

use afp_bench::{figures, ExperimentScale};

fn sparkline(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| RAMP[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let scale = ExperimentScale::from_args(std::env::args().skip(1));
    eprintln!("training with the hybrid curriculum at `{scale}` scale …");
    let fig = figures::fig6_training_curves(scale);
    println!("{}", fig.csv);
    let rewards: Vec<f64> = fig.history.iter().map(|h| h.episode_reward_mean).collect();
    let kls: Vec<f64> = fig.history.iter().map(|h| h.approx_kl).collect();
    println!("episode reward mean : {}", sparkline(&rewards));
    println!("approximate KL      : {}", sparkline(&kls));
    println!(
        "updates: {}, final reward mean: {:.2}, final approx KL: {:.4}",
        fig.history.len(),
        rewards.last().copied().unwrap_or(f64::NAN),
        kls.last().copied().unwrap_or(f64::NAN)
    );
}

//! Reproducible perf snapshot: writes `BENCH_pack.json` with the packing
//! engines' median times, the grid-realization (`snap`) and positional-mask
//! (`masks`) medians, and the SA evaluation throughput, so every PR that
//! touches the hot path has a trajectory to compare against.
//!
//! Usage: `cargo run --release -p afp-bench --bin bench_snapshot`
//! (run from the repository root; the snapshot is written to
//! `BENCH_pack.json` in the current directory).

use std::time::Instant;

use afp_bench::perf::{masks_workload, median_ns, random_pair, snap_workload, PACK_SIZES};
use afp_circuit::generators;
use afp_layout::masks::positional_masks;
use afp_layout::sequence_pair::{realize_floorplan, PackedFloorplan};
use afp_layout::{Floorplan, PackScratch};
use afp_metaheuristics::{simulated_annealing, SaConfig};

fn main() {
    let mut pack_rows = Vec::new();
    for &n in &PACK_SIZES {
        let sp = random_pair(n, 0xBEEF ^ n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut out = PackedFloorplan::default();
        let fast_ns = median_ns(|| sp.pack_into(&mut scratch, &mut out));
        let legacy_ns = median_ns(|| {
            let _ = sp.pack_relaxation();
        });
        let speedup = legacy_ns / fast_ns.max(1e-9);
        println!(
            "pack n={n:>3}: fast_sp {fast_ns:>12.1} ns  legacy {legacy_ns:>14.1} ns  speedup {speedup:>8.1}x"
        );
        pack_rows.push(format!(
            "    {{\"blocks\": {n}, \"fast_sp_ns\": {fast_ns:.1}, \"legacy_relaxation_ns\": {legacy_ns:.1}, \"speedup\": {speedup:.2}}}"
        ));
    }

    // Grid realization (pack + scale + snap + bitboard nearest-fit): the
    // stage the BitGrid engine targets.
    let mut snap_rows = Vec::new();
    for &n in &PACK_SIZES {
        let (circuit, canvas, sp) = snap_workload(n, 0xBEEF ^ n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::new(canvas);
        let snap_ns = median_ns(|| {
            realize_floorplan(
                &sp.positive,
                &sp.negative,
                &sp.shapes,
                &circuit,
                canvas,
                &mut scratch,
                &mut fp,
            )
        });
        println!("snap n={n:>3}: realize_floorplan {snap_ns:>12.1} ns");
        snap_rows.push(format!(
            "    {{\"blocks\": {n}, \"realize_floorplan_ns\": {snap_ns:.1}}}"
        ));
    }

    // Positional-mask (f_p) construction from the free-anchor bitmask — the
    // per-step cost of the RL env and mask-dataset builds.
    let (mcircuit, mfp, mblock, mshapes) = masks_workload();
    let masks_ns = median_ns(|| {
        let _ = positional_masks(&mcircuit, &mfp, mblock, &mshapes);
    });
    println!("masks bias19: positional_masks {masks_ns:>12.1} ns");

    // SA throughput on the largest paper circuit (Bias-2, 19 blocks): full
    // cost evaluations (pack + grid realization + reward) per second.
    let circuit = generators::bias19();
    let config = SaConfig::table1();
    let started = Instant::now();
    let result = simulated_annealing(&circuit, &config);
    let elapsed = started.elapsed().as_secs_f64();
    let moves_per_sec = result.evaluations as f64 / elapsed.max(1e-9);
    println!(
        "sa bias19: {} evaluations in {elapsed:.3} s -> {moves_per_sec:.0} moves/s (reward {:.3})",
        result.evaluations, result.reward
    );

    let json = format!(
        "{{\n  \"benchmark\": \"pack\",\n  \"description\": \"FAST-SP vs legacy relaxation packing; BitGrid grid realization and positional masks; SA cost-evaluation throughput\",\n  \"pack\": [\n{}\n  ],\n  \"snap\": [\n{}\n  ],\n  \"masks\": {{\n    \"circuit\": \"{}\",\n    \"positional_masks_ns\": {:.1}\n  }},\n  \"sa\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"iterations\": {},\n    \"evaluations\": {},\n    \"seconds\": {:.4},\n    \"moves_per_sec\": {:.0}\n  }}\n}}\n",
        pack_rows.join(",\n"),
        snap_rows.join(",\n"),
        mcircuit.name,
        masks_ns,
        circuit.name,
        circuit.num_blocks(),
        config.iterations,
        result.evaluations,
        elapsed,
        moves_per_sec,
    );
    std::fs::write("BENCH_pack.json", &json).expect("write BENCH_pack.json");
    println!("wrote BENCH_pack.json");
}

//! Reproducible perf snapshot: writes `BENCH_pack.json` with the packing
//! engines' median times, the grid-realization (`snap`), incremental
//! dirty-block realization (`incremental_realize`, per-move cost + replay
//! hit rate), positional-mask (`masks`), parallel generation-evaluation
//! (`eval_pool`), parked-pool dispatch (`pool_overhead`), multi-start SA
//! (`multistart`) and locality-aware move mix (`sa_locality`) medians, the
//! serve layer's cache-hit latency and job throughput (`serve`), the serve
//! daemon's drain-loop throughput and snapshot restore-then-hit latency
//! (`serve_daemon`), and the SA evaluation throughput, so every PR that
//! touches the hot path has a trajectory to compare against.
//!
//! Usage: `cargo run --release -p afp-bench --bin bench_snapshot`
//! (run from the repository root; the snapshot is written to
//! `BENCH_pack.json` in the current directory).

use std::time::Instant;

use afp_bench::perf::{
    masks_workload, median_ns, random_pair, snap_workload, synthetic_circuit, LARGE_N_SIZES,
    PACK_SIZES,
};
use afp_circuit::generators;
use afp_layout::masks::positional_masks;
use afp_layout::sequence_pair::{realize_floorplan, PackedFloorplan};
use afp_layout::{Floorplan, PackScratch};
use afp_metaheuristics::{
    chain_seed, multistart_sa, select_winner, simulated_annealing,
    simulated_annealing_with_cache, Baseline, Candidate, CostCache, EvalPool, GaConfig, MoveMix,
    MultistartSaConfig, Problem, SaConfig,
};
use afp_par::{PoolHandle, WorkerPool};
use afp_serve::{CacheHandle, JobEngine, JobRequest, JobSpec, ServeConfig, ServeDaemon};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // SA throughput is measured first, before the long pack/snap sweeps have
    // kept the shared container busy for minutes — the ~10 ms SA runs are the
    // most sensitive to scheduler/thermal contamination from earlier
    // sections. Results are printed in their usual place below.
    let sa_circuit = generators::bias19();
    let config = SaConfig::table1();
    // The untimed warm-up run (doubles as the fallback result value).
    let mut sa_result = simulated_annealing(&sa_circuit, &config);
    let mut sa_samples = Vec::new();
    for _ in 0..5 {
        let started = Instant::now();
        sa_result = simulated_annealing(&sa_circuit, &config);
        sa_samples.push(started.elapsed().as_secs_f64());
    }

    // Parallel generation evaluation (EvalPool): a GA-style 40-candidate
    // generation on Bias-2 through the serial `cost_cached` loop and through
    // the pool at 1/2/4 workers — measured here, while the machine is still
    // quiet, for the same reason SA is. Bit-identity of the pool against the
    // serial loop is asserted outright: a divergence aborts the snapshot and
    // with it the CI smoke run.
    let pool_problem = Problem::new(&sa_circuit);
    const POPULATION: usize = 40;
    let hardware_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rng = StdRng::seed_from_u64(0xE7A1);
    let initial_generation: Vec<Candidate> = (0..POPULATION)
        .map(|_| Candidate::random(pool_problem.num_blocks(), &mut rng))
        .collect();
    let bit_identical = {
        let mut check_cache = CostCache::new(&pool_problem);
        let serial_costs: Vec<f64> = initial_generation
            .iter()
            .map(|c| pool_problem.cost_cached(c, &mut check_cache))
            .collect();
        [1usize, 2, 4].into_iter().all(|workers| {
            let mut pool = EvalPool::new(&pool_problem, workers);
            pool.evaluate(&pool_problem, &initial_generation) == serial_costs
        })
    };
    // The recorded verdict is the computed one; a divergence still aborts the
    // snapshot (and with it the CI smoke run) rather than writing `false`.
    assert!(bit_identical, "EvalPool diverged from the serial loop");
    // Every timing row restarts from the same population and perturbation
    // stream, so serial and 1/2/4-worker rows time the identical candidate
    // workload and their ratio (speedup_workers4) is workload-matched.
    let time_row = |pool_workers: Option<usize>| -> f64 {
        let mut generation = initial_generation.clone();
        let mut rng = StdRng::seed_from_u64(0x6E21);
        let mut cache = CostCache::new(&pool_problem);
        let mut pool = pool_workers.map(|w| EvalPool::new(&pool_problem, w));
        median_ns(|| {
            for candidate in &mut generation {
                let _ = candidate.perturb(&mut rng);
            }
            match &mut pool {
                Some(pool) => {
                    let _ = pool.evaluate(&pool_problem, &generation);
                }
                None => {
                    for candidate in &generation {
                        let _ = pool_problem.cost_cached(candidate, &mut cache);
                    }
                }
            }
        })
    };
    let serial_generation_ns = time_row(None);
    let pool_generation_ns: Vec<(usize, f64)> = [1usize, 2, 4]
        .into_iter()
        .map(|workers| (workers, time_row(Some(workers))))
        .collect();
    let workers4_ns = pool_generation_ns
        .iter()
        .find(|(w, _)| *w == 4)
        .map(|&(_, ns)| ns)
        .expect("4-worker row measured");
    let pool_speedup_4 = serial_generation_ns / workers4_ns.max(1e-9);

    // Per-batch dispatch overhead of the parked pool against the
    // spawn-per-call shim, on a trivial 8-item batch at 2 workers: the work
    // is negligible, so each median is the fixed cost per batch its model
    // charges. The acceptance bar for the persistent pool is that the parked
    // dispatch (one epoch bump + unpark per active worker) lands strictly
    // below a thread spawn-and-join, which holds even on the 1-hardware-
    // thread CI container — both models context-switch there, but only the
    // shim pays thread creation and teardown too.
    const OVERHEAD_WORKERS: usize = 2;
    let overhead_items: Vec<u64> = (0..8).collect();
    let spawn_batch_ns = {
        let mut states = vec![0u64; OVERHEAD_WORKERS];
        median_ns(|| {
            let _ = afp_par::parallel_map_scoped(&overhead_items, &mut states, |_, &x| x);
        })
    };
    let mut overhead_pool = WorkerPool::new(OVERHEAD_WORKERS);
    let parked_batch_ns = {
        let mut states = vec![0u64; OVERHEAD_WORKERS];
        median_ns(|| {
            let _ = overhead_pool.map_scoped(&overhead_items, &mut states, |_, &x| x);
        })
    };
    let overhead_stats = overhead_pool.stats();
    drop(overhead_pool);
    let spawn_over_parked = spawn_batch_ns / parked_batch_ns.max(1e-9);

    // Multi-start SA: 4 Table-I-budget chains on Bias-2 over the persistent
    // pool. Chain bit-identity against the serial replay (and the winner
    // against the serial reduction) is asserted before any timing — a
    // divergence aborts the snapshot, so a written `multistart` section
    // proves the check ran and passed. Timed at 1 and 2 pool workers; on the
    // 1-thread container the 2-worker row just timeslices and is recorded
    // for trajectory purposes, not judged.
    let ms_cfg = MultistartSaConfig {
        base: SaConfig::table1(),
        chains: 4,
        workers: 2,
    };
    let ms_pooled = multistart_sa(&sa_circuit, &ms_cfg);
    let ms_bit_identical = {
        let serial_chains: Vec<_> = (0..ms_cfg.chains)
            .map(|chain| {
                let chain_cfg = SaConfig {
                    seed: chain_seed(ms_cfg.base.seed, chain),
                    ..ms_cfg.base.clone()
                };
                let mut cache = CostCache::new(&pool_problem);
                simulated_annealing_with_cache(&pool_problem, &chain_cfg, None, &mut cache)
            })
            .collect();
        ms_pooled
            .chains
            .iter()
            .zip(&serial_chains)
            .all(|(outcome, s)| {
                outcome.result().is_some_and(|p| {
                    p.reward == s.reward
                        && p.evaluations == s.evaluations
                        && p.floorplan == s.floorplan
                })
            })
            && ms_pooled.winner == Some(select_winner(&sa_circuit, &serial_chains))
    };
    assert!(
        ms_bit_identical,
        "multistart chains diverged from the serial replay"
    );
    let ms_time_ns = |workers: usize| {
        let cfg = MultistartSaConfig {
            workers,
            ..ms_cfg.clone()
        };
        median_ns(|| {
            let _ = multistart_sa(&sa_circuit, &cfg);
        })
    };
    let ms_workers1_ns = ms_time_ns(1);
    let ms_workers2_ns = ms_time_ns(2);
    let ms_chains_per_sec_w1 = ms_cfg.chains as f64 / (ms_workers1_ns * 1e-9).max(1e-12);
    let ms_chains_per_sec_w2 = ms_cfg.chains as f64 / (ms_workers2_ns * 1e-9).max(1e-12);

    // Serve layer: cache-hit latency vs cold solve, and job throughput at
    // 1/2/4 pool workers on a batch of distinct-seed Table-I SA jobs.
    // Bit-identity of the memoized result against the cold solve is asserted
    // before any timing — a written `serve` section proves the check passed.
    let serve_spec = JobSpec::new(sa_circuit.clone(), Baseline::Sa(SaConfig::table1()), 0x5EED);
    let serve_pool = PoolHandle::new(1);
    let serve_bit_identical = {
        let engine = JobEngine::with_pool(&ServeConfig::default(), serve_pool.clone());
        let cold = engine.submit(JobRequest::new(serve_spec.clone()));
        engine.run_pending();
        let hot = engine.submit(JobRequest::new(serve_spec.clone()));
        engine.run_pending();
        let cold = engine.outcome(cold).expect("cold solve finished").clone();
        let hot = engine.outcome(hot).expect("hit resolved").clone();
        !cold.cache_hit
            && hot.cache_hit
            && cold.result.reward.to_bits() == hot.result.reward.to_bits()
            && cold.result.evaluations == hot.result.evaluations
            && cold.result.floorplan == hot.result.floorplan
            && engine.cache_stats().hits == 1
    };
    assert!(
        serve_bit_identical,
        "serve cache hit diverged from the cold solve"
    );
    let serve_cold_ns = median_ns(|| {
        let engine = JobEngine::with_pool(&ServeConfig::default(), serve_pool.clone());
        let id = engine.submit(JobRequest::new(serve_spec.clone()));
        engine.run_pending();
        assert!(!engine.outcome(id).expect("solved").cache_hit);
    });
    // Hit latency is measured on a warmed engine with a bounded submission
    // count per sample (not `median_ns`, whose calibration would enqueue
    // millions of job records): median of 5 samples of 200 hits.
    let serve_hit_ns = {
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let engine =
                    JobEngine::with_pool(&ServeConfig::default(), serve_pool.clone());
                engine.submit(JobRequest::new(serve_spec.clone()));
                engine.run_pending();
                const HITS: usize = 200;
                let started = Instant::now();
                for _ in 0..HITS {
                    let id = engine.submit(JobRequest::new(serve_spec.clone()));
                    engine.run_pending();
                    assert!(engine.outcome(id).expect("resolved").cache_hit);
                }
                started.elapsed().as_nanos() as f64 / HITS as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    };
    let serve_hit_speedup = serve_cold_ns / serve_hit_ns.max(1e-9);
    const SERVE_JOBS: u64 = 8;
    let mut serve_seed = 0u64;
    let mut serve_jobs_per_sec = |workers: usize| {
        let pool = PoolHandle::new(workers);
        let ns = median_ns(|| {
            // Fresh engine, fresh seeds: every job is a genuine solve, so
            // the number reflects sharded solve throughput, not cache hits.
            let engine = JobEngine::with_pool(&ServeConfig::default(), pool.clone());
            for _ in 0..SERVE_JOBS {
                serve_seed += 1;
                let mut spec = serve_spec.clone();
                spec.seed = 0x0DD5_0000 + serve_seed;
                engine.submit(JobRequest::new(spec));
            }
            assert_eq!(engine.run_pending(), SERVE_JOBS as usize);
        });
        SERVE_JOBS as f64 / (ns * 1e-9).max(1e-12)
    };
    let serve_jps_w1 = serve_jobs_per_sec(1);
    let serve_jps_w2 = serve_jobs_per_sec(2);
    let serve_jps_w4 = serve_jobs_per_sec(4);

    // Serve daemon: restore-then-hit latency against the cold solve, and
    // sustained throughput through the live drain loop on an 8-job mixed
    // SA/GA batch at 1/2/4 pool workers. The restored hit's bit-identity
    // against the cold outcome is asserted before any timing — a written
    // `serve_daemon` section proves a snapshotted cache answers exactly
    // what the cold engine solved.
    let (daemon_snapshot_bytes, daemon_bit_identical) = {
        let engine = JobEngine::with_pool(&ServeConfig::default(), serve_pool.clone());
        let id = engine.submit(JobRequest::new(serve_spec.clone()));
        engine.run_pending();
        let cold = engine.outcome(id).expect("cold solve finished");
        let bytes = engine.cache().snapshot_bytes();
        let restored = CacheHandle::new(64);
        restored
            .restore_bytes(&bytes)
            .expect("snapshot round-trips");
        let warm = JobEngine::with_cache(&ServeConfig::default(), serve_pool.clone(), restored);
        let id = warm.submit(JobRequest::new(serve_spec.clone()));
        warm.run_pending();
        let hit = warm.outcome(id).expect("restored hit resolved");
        let identical = hit.cache_hit
            && cold.result.reward.to_bits() == hit.result.reward.to_bits()
            && cold.result.evaluations == hit.result.evaluations
            && cold.result.floorplan == hit.result.floorplan;
        (bytes, identical)
    };
    assert!(
        daemon_bit_identical,
        "restored cache hit diverged from the cold solve"
    );
    // Restore-then-hit latency: each sample decodes the snapshot into a
    // fresh cache and serves 200 hits through a fresh engine, so the
    // per-hit figure carries its amortized share of the restore. Same
    // bounded-sample shape as `serve_hit_ns` (median_ns would calibrate to
    // millions of job records).
    let daemon_restored_hit_ns = {
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                const HITS: usize = 200;
                let started = Instant::now();
                let restored = CacheHandle::new(64);
                restored
                    .restore_bytes(&daemon_snapshot_bytes)
                    .expect("snapshot round-trips");
                let engine =
                    JobEngine::with_cache(&ServeConfig::default(), serve_pool.clone(), restored);
                for _ in 0..HITS {
                    let id = engine.submit(JobRequest::new(serve_spec.clone()));
                    engine.run_pending();
                    assert!(engine.outcome(id).expect("resolved").cache_hit);
                }
                started.elapsed().as_nanos() as f64 / HITS as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        samples[samples.len() / 2]
    };
    let daemon_restore_speedup = serve_cold_ns / daemon_restored_hit_ns.max(1e-9);
    const DAEMON_JOBS: u64 = 8;
    let mut daemon_seed = 0u64;
    let mut daemon_jobs_per_sec = |workers: usize| {
        // One persistent daemon per worker count; every sample streams 8
        // fresh-seed jobs through the live drain loop and blocks on
        // `wait_idle`, so the number is sustained submit-to-resolved
        // throughput, not cache hits. Warm starts are off: the jobs share
        // a topology, and seeding later jobs from earlier winners would
        // shrink their work mid-measurement.
        let daemon = ServeDaemon::spawn(&ServeConfig {
            workers,
            warm_start: false,
            ..ServeConfig::default()
        });
        let ns = median_ns(|| {
            for _ in 0..DAEMON_JOBS {
                daemon_seed += 1;
                let solver = if daemon_seed % 2 == 0 {
                    Baseline::Ga(GaConfig::small())
                } else {
                    Baseline::Sa(SaConfig::table1())
                };
                let spec =
                    JobSpec::new(sa_circuit.clone(), solver, 0xDAE0_0000 + daemon_seed);
                daemon
                    .submit(JobRequest::new(spec))
                    .expect("daemon admits while draining");
            }
            daemon.wait_idle();
        });
        daemon.shutdown();
        DAEMON_JOBS as f64 / (ns * 1e-9).max(1e-12)
    };
    let daemon_jps_w1 = daemon_jobs_per_sec(1);
    let daemon_jps_w2 = daemon_jobs_per_sec(2);
    let daemon_jps_w4 = daemon_jobs_per_sec(4);

    // Locality-aware SA move mix: the end-to-end cost walk at bias 0 (the
    // historical uniform proposal stream) vs the Table I bias. The timing
    // comes from `median_ns` (wall-clock calibrated, so its move count — and
    // any counter read off the same caches — would vary run to run); the
    // replay counters CI asserts an ordering on are therefore measured
    // separately, on a fixed-length fixed-seed walk with fresh caches, which
    // makes them fully deterministic.
    let locality_move_ns = |bias: f64| {
        let mix = MoveMix::local(bias);
        let mut cache = CostCache::new(&pool_problem);
        let mut rng = StdRng::seed_from_u64(0x10CA);
        let mut walk = Candidate::random(pool_problem.num_blocks(), &mut rng);
        median_ns(|| {
            let _ = walk.perturb_with(&mix, &mut rng);
            let _ = pool_problem.cost_cached(&walk, &mut cache);
        })
    };
    let locality_counters = |bias: f64| {
        let mix = MoveMix::local(bias);
        let mut cache = CostCache::new(&pool_problem);
        let mut rng = StdRng::seed_from_u64(0x10CA);
        let mut walk = Candidate::random(pool_problem.num_blocks(), &mut rng);
        for _ in 0..4_000 {
            let _ = walk.perturb_with(&mix, &mut rng);
            let _ = pool_problem.cost_cached(&walk, &mut cache);
        }
        let stats = cache.realize_stats();
        (stats.hit_rate(), stats.pack_stats().replay_rate())
    };
    let uniform_move_ns = locality_move_ns(0.0);
    let local_move_ns = locality_move_ns(config.locality_bias);
    let (uniform_snap_hit, uniform_pack_replay) = locality_counters(0.0);
    let (local_snap_hit, local_pack_replay) = locality_counters(config.locality_bias);

    let mut pack_rows = Vec::new();
    for &n in &PACK_SIZES {
        let sp = random_pair(n, 0xBEEF ^ n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut out = PackedFloorplan::default();
        let fast_ns = median_ns(|| sp.pack_into(&mut scratch, &mut out));
        let legacy_ns = median_ns(|| {
            let _ = sp.pack_relaxation();
        });
        let speedup = legacy_ns / fast_ns.max(1e-9);
        println!(
            "pack n={n:>3}: fast_sp {fast_ns:>12.1} ns  legacy {legacy_ns:>14.1} ns  speedup {speedup:>8.1}x"
        );
        pack_rows.push(format!(
            "    {{\"blocks\": {n}, \"fast_sp_ns\": {fast_ns:.1}, \"legacy_relaxation_ns\": {legacy_ns:.1}, \"speedup\": {speedup:.2}}}"
        ));
    }

    // Grid realization (pack + scale + snap + bitboard nearest-fit): the
    // stage the BitGrid engine targets.
    let mut snap_rows = Vec::new();
    for &n in &PACK_SIZES {
        let (circuit, canvas, sp) = snap_workload(n, 0xBEEF ^ n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::new(canvas);
        let snap_ns = median_ns(|| {
            realize_floorplan(
                &sp.positive,
                &sp.negative,
                &sp.shapes,
                &circuit,
                canvas,
                &mut scratch,
                &mut fp,
            )
        });
        println!("snap n={n:>3}: realize_floorplan {snap_ns:>12.1} ns");
        snap_rows.push(format!(
            "    {{\"blocks\": {n}, \"realize_floorplan_ns\": {snap_ns:.1}}}"
        ));
    }

    // Large-n workload tier: 200/500/1000-block synthetic circuits through
    // the full incremental cost pipeline — multi-word occupancy grids
    // (grid_side_for picks 64/96/128 cells per side) and spilled per-block /
    // per-constraint metric masks. Each row records the warm per-move SA
    // cost, a 6-candidate EvalPool generation, a 2-chain multi-start run,
    // and the fallback tripwire (must read 0: the incremental engines never
    // abandon their term state at any n).
    let mut large_n_rows = Vec::new();
    for &n in &LARGE_N_SIZES {
        let circuit = synthetic_circuit(n);
        let problem = Problem::new(&circuit);
        let grid_side = problem.grid_side;
        let mut cache = CostCache::new(&problem);
        let mut rng = StdRng::seed_from_u64(0x1A26 ^ n as u64);
        let mut walk = Candidate::random(problem.num_blocks(), &mut rng);
        let sa_move_ns = median_ns(|| {
            let _ = walk.perturb(&mut rng);
            let _ = problem.cost_cached(&walk, &mut cache);
        });
        let generation: Vec<Candidate> = (0..6)
            .map(|_| Candidate::random(problem.num_blocks(), &mut rng))
            .collect();
        let mut pool = EvalPool::new(&problem, 2);
        let pool_generation_ns = median_ns(|| {
            let _ = pool.evaluate(&problem, &generation);
        });
        let ms_cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 150,
                seed: 0x5EED ^ n as u64,
                ..SaConfig::small()
            },
            chains: 2,
            workers: 2,
        };
        let multistart_ns = median_ns(|| {
            let _ = multistart_sa(&circuit, &ms_cfg);
        });
        let fallback_rescans = cache.fallback_rescans() + pool.fallback_rescans();
        println!(
            "large_n n={n:>4}: grid {grid_side:>3}  sa {sa_move_ns:>10.1} ns/move  pool-gen {pool_generation_ns:>12.1} ns  multistart {:.1} ms  fallbacks {fallback_rescans}",
            multistart_ns / 1e6,
        );
        large_n_rows.push(format!(
            "    {{\"blocks\": {n}, \"grid_side\": {grid_side}, \"sa_move_ns\": {sa_move_ns:.1}, \"eval_pool_generation_ns\": {pool_generation_ns:.1}, \"multistart_ns\": {multistart_ns:.1}, \"fallback_rescans\": {fallback_rescans}}}"
        ));
        assert_eq!(
            fallback_rescans, 0,
            "incremental metrics fell back at n = {n}"
        );
    }

    // Positional-mask (f_p) construction from the free-anchor bitmask — the
    // per-step cost of the RL env and mask-dataset builds.
    let (mcircuit, mfp, mblock, mshapes) = masks_workload();
    let masks_ns = median_ns(|| {
        let _ = positional_masks(&mcircuit, &mfp, mblock, &mshapes);
    });
    println!("masks bias19: positional_masks {masks_ns:>12.1} ns");

    // The incremental cost pipeline vs the always-full oracle paths, on an
    // SA-style perturbation walk over Bias-2: per-move cost of (a) the full
    // stack (dirty-block realization + dirty-set pack + dirty-set metrics),
    // (b) incremental realization with the full metrics rescan, and (c) the
    // all-full oracle — plus the engines' observability counters (snap-skip
    // hit rate, FAST-SP pass-position replay rate).
    let circuit = generators::bias19();
    let problem = Problem::new(&circuit);
    let mut rng = StdRng::seed_from_u64(0x1C4E);
    let mut walk = Candidate::random(problem.num_blocks(), &mut rng);
    let mut inc_cache = CostCache::new(&problem);
    inc_cache.set_incremental(true);
    inc_cache.set_incremental_metrics(true);
    let incremental_ns = median_ns(|| {
        let _ = walk.perturb(&mut rng);
        let _ = problem.cost_cached(&walk, &mut inc_cache);
    });
    let mut mixed_cache = CostCache::new(&problem);
    mixed_cache.set_incremental(true);
    mixed_cache.set_incremental_metrics(false);
    let realize_only_ns = median_ns(|| {
        let _ = walk.perturb(&mut rng);
        let _ = problem.cost_cached(&walk, &mut mixed_cache);
    });
    let mut full_cache = CostCache::new(&problem);
    full_cache.set_incremental(false);
    full_cache.set_incremental_metrics(false);
    let full_ns = median_ns(|| {
        let _ = walk.perturb(&mut rng);
        let _ = problem.cost_cached(&walk, &mut full_cache);
    });
    let stats = inc_cache.realize_stats();
    let hit_rate = stats.hit_rate();
    let pack_replay_rate = stats.pack_stats().replay_rate();
    let realize_speedup = full_ns / incremental_ns.max(1e-9);
    println!(
        "incremental bias19: {incremental_ns:>8.1} ns/move (realize-only {realize_only_ns:.1} ns, full {full_ns:.1} ns, {realize_speedup:.2}x) snap hit {:.1}% pack replay {:.1}%",
        100.0 * hit_rate,
        100.0 * pack_replay_rate,
    );

    println!(
        "eval_pool bias19: serial 40-gen {serial_generation_ns:>10.1} ns  pool {} (speedup x4 {pool_speedup_4:.2}, {hardware_threads} hw threads)",
        pool_generation_ns
            .iter()
            .map(|(w, ns)| format!("w{w} {ns:.0}"))
            .collect::<Vec<_>>()
            .join("  "),
    );
    println!(
        "pool_overhead: spawn-per-call {spawn_batch_ns:>10.1} ns/batch  parked {parked_batch_ns:>10.1} ns/batch ({spawn_over_parked:.1}x, {} batches, {} wakes)",
        overhead_stats.batches, overhead_stats.threads_woken,
    );
    println!(
        "multistart bias19: 4 chains  w1 {:.1} ms ({ms_chains_per_sec_w1:.1} chains/s)  w2 {:.1} ms ({ms_chains_per_sec_w2:.1} chains/s)",
        ms_workers1_ns / 1e6,
        ms_workers2_ns / 1e6,
    );
    println!(
        "serve bias19: cold {:.1} ms  hit {:.1} us ({serve_hit_speedup:.0}x)  {SERVE_JOBS} jobs  w1 {serve_jps_w1:.1}/s  w2 {serve_jps_w2:.1}/s  w4 {serve_jps_w4:.1}/s",
        serve_cold_ns / 1e6,
        serve_hit_ns / 1e3,
    );
    println!(
        "serve_daemon bias19: restored hit {:.1} us ({daemon_restore_speedup:.0}x vs cold, {} snapshot bytes)  {DAEMON_JOBS} jobs  w1 {daemon_jps_w1:.1}/s  w2 {daemon_jps_w2:.1}/s  w4 {daemon_jps_w4:.1}/s",
        daemon_restored_hit_ns / 1e3,
        daemon_snapshot_bytes.len(),
    );
    println!(
        "sa_locality bias19: uniform {uniform_move_ns:>8.1} ns/move (pack replay {:.1}%, snap hit {:.1}%)  bias {:.2} {local_move_ns:>8.1} ns/move (pack replay {:.1}%, snap hit {:.1}%)",
        100.0 * uniform_pack_replay,
        100.0 * uniform_snap_hit,
        config.locality_bias,
        100.0 * local_pack_replay,
        100.0 * local_snap_hit,
    );

    // SA throughput on the largest paper circuit (Bias-2, 19 blocks): full
    // cost evaluations (pack + grid realization + reward) per second,
    // measured at the top of `main` (before the long sweeps disturb the
    // machine) after one untimed warm-up run — the Table I budget is only
    // 4 000 moves, so a cold run is dominated by first-touch page faults and
    // branch training rather than the steady-state cost the trajectory
    // tracks. Each timed run lasts only ~10 ms, so a single sample is
    // dominated by scheduler noise on the shared container — the median of
    // 5 runs is reported, matching every other snapshot section.
    let result = sa_result;
    let mut samples = sa_samples;
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let elapsed = samples[samples.len() / 2];
    let moves_per_sec = result.evaluations as f64 / elapsed.max(1e-9);
    println!(
        "sa bias19: {} evaluations in {elapsed:.3} s (median of {}) -> {moves_per_sec:.0} moves/s (reward {:.3})",
        result.evaluations,
        samples.len(),
        result.reward
    );

    // The EvalPool and locality-mix sections, assembled separately so the
    // top-level format string stays readable.
    let eval_pool_json = format!(
        "  \"eval_pool\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"population\": {POPULATION},\n    \"hardware_threads\": {hardware_threads},\n    \"serial_generation_ns\": {serial_generation_ns:.1},\n    \"workers1_generation_ns\": {:.1},\n    \"workers2_generation_ns\": {:.1},\n    \"workers4_generation_ns\": {:.1},\n    \"speedup_workers4\": {pool_speedup_4:.2},\n    \"bit_identical\": {bit_identical}\n  }}",
        sa_circuit.name,
        sa_circuit.num_blocks(),
        pool_generation_ns[0].1,
        pool_generation_ns[1].1,
        pool_generation_ns[2].1,
    );
    let sa_locality_json = format!(
        "  \"sa_locality\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"locality_bias\": {:.2},\n    \"uniform_move_ns\": {uniform_move_ns:.1},\n    \"local_move_ns\": {local_move_ns:.1},\n    \"uniform_pack_replay_rate\": {uniform_pack_replay:.3},\n    \"local_pack_replay_rate\": {local_pack_replay:.3},\n    \"uniform_snap_hit_rate\": {uniform_snap_hit:.3},\n    \"local_snap_hit_rate\": {local_snap_hit:.3}\n  }}",
        sa_circuit.name,
        sa_circuit.num_blocks(),
        config.locality_bias,
    );
    let pool_overhead_json = format!(
        "  \"pool_overhead\": {{\n    \"workers\": {OVERHEAD_WORKERS},\n    \"batch_items\": {},\n    \"spawn_batch_ns\": {spawn_batch_ns:.1},\n    \"parked_batch_ns\": {parked_batch_ns:.1},\n    \"spawn_over_parked\": {spawn_over_parked:.2},\n    \"parked_batches\": {},\n    \"parked_threads_woken\": {}\n  }}",
        overhead_items.len(),
        overhead_stats.batches,
        overhead_stats.threads_woken,
    );
    let multistart_json = format!(
        "  \"multistart\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"chains\": {},\n    \"chain_iterations\": {},\n    \"workers1_ns\": {ms_workers1_ns:.1},\n    \"workers2_ns\": {ms_workers2_ns:.1},\n    \"workers1_chains_per_sec\": {ms_chains_per_sec_w1:.2},\n    \"workers2_chains_per_sec\": {ms_chains_per_sec_w2:.2},\n    \"bit_identical\": {ms_bit_identical}\n  }}",
        sa_circuit.name,
        sa_circuit.num_blocks(),
        ms_cfg.chains,
        ms_cfg.base.iterations,
    );
    let serve_json = format!(
        "  \"serve\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"solver\": \"SA\",\n    \"cold_solve_ns\": {serve_cold_ns:.1},\n    \"cache_hit_ns\": {serve_hit_ns:.1},\n    \"hit_speedup\": {serve_hit_speedup:.1},\n    \"batch_jobs\": {SERVE_JOBS},\n    \"jobs_per_sec_workers1\": {serve_jps_w1:.2},\n    \"jobs_per_sec_workers2\": {serve_jps_w2:.2},\n    \"jobs_per_sec_workers4\": {serve_jps_w4:.2},\n    \"bit_identical\": {serve_bit_identical}\n  }}",
        sa_circuit.name,
        sa_circuit.num_blocks(),
    );
    let serve_daemon_json = format!(
        "  \"serve_daemon\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"batch_jobs\": {DAEMON_JOBS},\n    \"drain_jobs_per_sec_workers1\": {daemon_jps_w1:.2},\n    \"drain_jobs_per_sec_workers2\": {daemon_jps_w2:.2},\n    \"drain_jobs_per_sec_workers4\": {daemon_jps_w4:.2},\n    \"cold_solve_ns\": {serve_cold_ns:.1},\n    \"restored_hit_ns\": {daemon_restored_hit_ns:.1},\n    \"restore_speedup\": {daemon_restore_speedup:.1},\n    \"snapshot_bytes\": {},\n    \"bit_identical\": {daemon_bit_identical}\n  }}",
        sa_circuit.name,
        sa_circuit.num_blocks(),
        daemon_snapshot_bytes.len(),
    );

    let json = format!(
        "{{\n  \"benchmark\": \"pack\",\n  \"description\": \"FAST-SP vs legacy relaxation packing; BitGrid grid realization (multi-word rows past 64 columns), the large-n workload tier, incremental dirty-block realization + dirty-set pack/metrics, positional masks; parallel EvalPool generation evaluation, parked WorkerPool dispatch overhead, multi-start SA, locality-aware SA move mix, the serve layer's result cache and job engine, the serve daemon's drain loop and snapshot restore, and SA cost-evaluation throughput\",\n  \"pack\": [\n{}\n  ],\n  \"snap\": [\n{}\n  ],\n  \"large_n\": [\n{}\n  ],\n  \"masks\": {{\n    \"circuit\": \"{}\",\n    \"positional_masks_ns\": {:.1}\n  }},\n  \"incremental_realize\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"incremental_move_ns\": {:.1},\n    \"incremental_realize_full_metrics_move_ns\": {:.1},\n    \"full_move_ns\": {:.1},\n    \"speedup\": {:.2},\n    \"replay_hit_rate\": {:.3},\n    \"pack_replay_rate\": {:.3}\n  }},\n{eval_pool_json},\n{pool_overhead_json},\n{multistart_json},\n{serve_json},\n{serve_daemon_json},\n{sa_locality_json},\n  \"sa\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"iterations\": {},\n    \"evaluations\": {},\n    \"locality_bias\": {:.2},\n    \"seconds\": {:.4},\n    \"moves_per_sec\": {:.0}\n  }}\n}}\n",
        pack_rows.join(",\n"),
        snap_rows.join(",\n"),
        large_n_rows.join(",\n"),
        mcircuit.name,
        masks_ns,
        circuit.name,
        circuit.num_blocks(),
        incremental_ns,
        realize_only_ns,
        full_ns,
        realize_speedup,
        hit_rate,
        pack_replay_rate,
        circuit.name,
        circuit.num_blocks(),
        config.iterations,
        result.evaluations,
        config.locality_bias,
        elapsed,
        moves_per_sec,
    );
    std::fs::write("BENCH_pack.json", &json).expect("write BENCH_pack.json");
    println!("wrote BENCH_pack.json");
}

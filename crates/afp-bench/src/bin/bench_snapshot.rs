//! Reproducible perf snapshot: writes `BENCH_pack.json` with the packing
//! engines' median times and the SA evaluation throughput, so every PR that
//! touches the hot path has a trajectory to compare against.
//!
//! Usage: `cargo run --release -p afp-bench --bin bench_snapshot`
//! (run from the repository root; the snapshot is written to
//! `BENCH_pack.json` in the current directory).

use std::time::Instant;

use afp_bench::perf::{median_ns, random_pair, PACK_SIZES};
use afp_circuit::generators;
use afp_layout::sequence_pair::PackedFloorplan;
use afp_layout::PackScratch;
use afp_metaheuristics::{simulated_annealing, SaConfig};

fn main() {
    let mut rows = Vec::new();
    for &n in &PACK_SIZES {
        let sp = random_pair(n, 0xBEEF ^ n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut out = PackedFloorplan::default();
        let fast_ns = median_ns(|| sp.pack_into(&mut scratch, &mut out));
        let legacy_ns = median_ns(|| {
            let _ = sp.pack_relaxation();
        });
        let speedup = legacy_ns / fast_ns.max(1e-9);
        println!(
            "pack n={n:>3}: fast_sp {fast_ns:>12.1} ns  legacy {legacy_ns:>14.1} ns  speedup {speedup:>8.1}x"
        );
        rows.push(format!(
            "    {{\"blocks\": {n}, \"fast_sp_ns\": {fast_ns:.1}, \"legacy_relaxation_ns\": {legacy_ns:.1}, \"speedup\": {speedup:.2}}}"
        ));
    }

    // SA throughput on the largest paper circuit (Bias-2, 19 blocks): full
    // cost evaluations (pack + grid realization + reward) per second.
    let circuit = generators::bias19();
    let config = SaConfig::table1();
    let started = Instant::now();
    let result = simulated_annealing(&circuit, &config);
    let elapsed = started.elapsed().as_secs_f64();
    let moves_per_sec = result.evaluations as f64 / elapsed.max(1e-9);
    println!(
        "sa bias19: {} evaluations in {elapsed:.3} s -> {moves_per_sec:.0} moves/s (reward {:.3})",
        result.evaluations, result.reward
    );

    let json = format!
        (
        "{{\n  \"benchmark\": \"pack\",\n  \"description\": \"FAST-SP vs legacy relaxation sequence-pair packing; SA cost-evaluation throughput\",\n  \"pack\": [\n{}\n  ],\n  \"sa\": {{\n    \"circuit\": \"{}\",\n    \"blocks\": {},\n    \"iterations\": {},\n    \"evaluations\": {},\n    \"seconds\": {:.4},\n    \"moves_per_sec\": {:.0}\n  }}\n}}\n",
        rows.join(",\n"),
        circuit.name,
        circuit.num_blocks(),
        config.iterations,
        result.evaluations,
        elapsed,
        moves_per_sec,
    );
    std::fs::write("BENCH_pack.json", &json).expect("write BENCH_pack.json");
    println!("wrote BENCH_pack.json");
}

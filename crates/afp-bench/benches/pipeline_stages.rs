//! Criterion benchmarks of the individual pipeline stages feeding the figure
//! and table reproductions: observation-mask construction (the per-step cost
//! of the RL environment), R-GCN encoding, OARSMT global routing and the full
//! procedural completion (the template-generation time of Table II).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afp_circuit::{generators, shapes::shape_sets, CircuitGraph, NODE_FEATURE_DIM};
use afp_gnn::{greedy_floorplan, RgcnEncoder};
use afp_layout::StateMasks;
use afp_route::{complete_layout, global_route, ProceduralConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_masks");
    group.sample_size(20);
    for circuit in [generators::ota8(), generators::driver()] {
        let floorplan = greedy_floorplan(&circuit);
        let sets = shape_sets(&circuit);
        // Rebuild the masks for the last block as if it were still pending.
        let block = circuit.blocks_by_decreasing_area()[circuit.num_blocks() - 1];
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.name.clone()),
            &circuit,
            |b, circ| {
                b.iter(|| StateMasks::build(circ, &floorplan, block, &sets[block.index()]))
            },
        );
    }
    group.finish();
}

fn bench_rgcn(c: &mut Criterion) {
    let mut group = c.benchmark_group("rgcn_encode");
    group.sample_size(30);
    let mut rng = StdRng::seed_from_u64(0);
    let mut encoder = RgcnEncoder::new(NODE_FEATURE_DIM, &mut rng);
    for circuit in [generators::ota8(), generators::bias19()] {
        let graph = CircuitGraph::from_circuit(&circuit);
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.name.clone()),
            &graph,
            |b, g| b.iter(|| encoder.encode(g)),
        );
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);
    for circuit in [generators::ota5(), generators::driver()] {
        let floorplan = greedy_floorplan(&circuit);
        group.bench_with_input(
            BenchmarkId::new("oarsmt_global_route", circuit.name.clone()),
            &circuit,
            |b, circ| b.iter(|| global_route(circ, &floorplan, 48)),
        );
        group.bench_with_input(
            BenchmarkId::new("procedural_completion", circuit.name.clone()),
            &circuit,
            |b, circ| b.iter(|| complete_layout(circ, &floorplan, &ProceduralConfig::default())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_masks, bench_rgcn, bench_routing);
criterion_main!(benches);

//! Criterion bench of the sequence-pair packing engines — the perf
//! trajectory guard for the FAST-SP work.
//!
//! Compares the FAST-SP O(n log n) LCS evaluation (`pack_into`, scratch
//! reuse) against the legacy O(n³) relaxation packer over block counts
//! spanning the paper's circuits (10–19 blocks) up to the scaling regime the
//! ROADMAP targets (200 blocks). The acceptance bar of the FAST-SP PR is a
//! ≥ 10× speedup at n = 100.
//!
//! Run with `cargo bench --bench pack`; `bench_snapshot` records the same
//! measurements into `BENCH_pack.json` for cross-PR comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afp_bench::perf::{random_pair, PACK_SIZES};
use afp_layout::sequence_pair::PackedFloorplan;
use afp_layout::PackScratch;

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    group.sample_size(20);
    for n in PACK_SIZES {
        let sp = random_pair(n, 0xBEEF ^ n as u64);

        let mut scratch = PackScratch::with_capacity(n);
        let mut out = PackedFloorplan::default();
        group.bench_with_input(BenchmarkId::new("fast_sp", n), &sp, |b, sp| {
            b.iter(|| sp.pack_into(&mut scratch, &mut out))
        });

        group.bench_with_input(BenchmarkId::new("legacy_relaxation", n), &sp, |b, sp| {
            b.iter(|| sp.pack_relaxation())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);

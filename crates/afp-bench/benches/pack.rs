//! Criterion bench of the floorplan hot path — the perf trajectory guard.
//!
//! Three groups cover the cost-function pipeline end to end:
//!
//! * `pack` — the FAST-SP O(n log n) LCS evaluation (`pack_into`, scratch
//!   reuse) against the legacy O(n³) relaxation packer, over block counts
//!   spanning the paper's circuits (10–19 blocks) up to the scaling regime
//!   the ROADMAP targets (200 blocks). The FAST-SP PR's acceptance bar was a
//!   ≥ 10× speedup at n = 100.
//! * `snap` — full grid realization (`realize_floorplan`: pack + scale +
//!   snap + bitboard nearest-fit placement), the stage that dominated SA
//!   cost evaluations after packing got fast.
//! * `incremental` — the incremental cost pipeline against the full paths on
//!   an SA-style perturbation walk (consecutive episodes differ by one
//!   move): dirty-block realization at n ∈ {19, 50, 100, 200}, the cached
//!   FAST-SP pack (`pack_coords_cached`) against the full sweep at the same
//!   sizes, and the end-to-end `cost_cached` evaluation on Bias-2 with the
//!   incremental layers on and off.
//! * `masks` — positional-mask (`f_p`) construction from the free-anchor
//!   bitmask, the per-step cost of the RL env and mask-dataset builds.
//! * `eval_pool` — a GA-style 40-candidate generation on Bias-2, evaluated
//!   through the serial `cost_cached` loop and through the `EvalPool` at
//!   1/2/4 workers. On a multi-core host the pool amortizes one scoped
//!   thread spawn per generation; on a single hardware thread (the CI
//!   container) the 1-worker row is the meaningful one — it must match the
//!   serial loop, the engine's zero-overhead contract.
//! * `sa_locality` — the end-to-end `cost_cached` SA walk under the
//!   locality-aware move mix at biases 0 / 0.5 / 0.9: how much adjacent
//!   swaps shrink the incremental pipeline's dirty sets per move.
//! * `pool_overhead` — per-batch dispatch cost of the persistent parked
//!   `WorkerPool` against the spawn-per-call `parallel_map_scoped` shim on a
//!   near-empty batch: the pure fixed cost an optimizer pays per generation
//!   under each model.
//! * `multistart` — 4 independent SA chains through `multistart_sa` at 1 and
//!   2 pool workers: whole optimizer runs as the unit of parallel work.
//!
//! Run with `cargo bench --bench pack`; `bench_snapshot` records the same
//! workloads into `BENCH_pack.json` for cross-PR comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afp_bench::perf::{masks_workload, perturb_pair, random_pair, snap_workload, PACK_SIZES};
use afp_circuit::generators;
use afp_layout::lcs_pack::{pack_coords, pack_coords_cached};
use afp_layout::masks::positional_masks;
use afp_layout::sequence_pair::{realize_floorplan, realize_floorplan_incremental, PackedFloorplan};
use afp_layout::{Floorplan, PackCache, PackScratch, RealizeCache};
use afp_metaheuristics::{
    multistart_sa, Candidate, CostCache, EvalPool, MoveMix, MultistartSaConfig, Problem, SaConfig,
};
use afp_par::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pack(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack");
    group.sample_size(20);
    for n in PACK_SIZES {
        let sp = random_pair(n, 0xBEEF ^ n as u64);

        let mut scratch = PackScratch::with_capacity(n);
        let mut out = PackedFloorplan::default();
        group.bench_with_input(BenchmarkId::new("fast_sp", n), &sp, |b, sp| {
            b.iter(|| sp.pack_into(&mut scratch, &mut out))
        });

        group.bench_with_input(BenchmarkId::new("legacy_relaxation", n), &sp, |b, sp| {
            b.iter(|| sp.pack_relaxation())
        });
    }
    group.finish();
}

fn bench_snap(c: &mut Criterion) {
    let mut group = c.benchmark_group("snap");
    group.sample_size(20);
    for n in PACK_SIZES {
        let (circuit, canvas, sp) = snap_workload(n, 0xBEEF ^ n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::new(canvas);
        group.bench_with_input(BenchmarkId::new("realize_floorplan", n), &sp, |b, sp| {
            b.iter(|| {
                realize_floorplan(
                    &sp.positive,
                    &sp.negative,
                    &sp.shapes,
                    &circuit,
                    canvas,
                    &mut scratch,
                    &mut fp,
                )
            })
        });
    }
    group.finish();
}

/// Full vs incremental realization along an SA-style perturbation walk: the
/// workload `cost_cached` sees, where consecutive episodes differ by one
/// move and the dirty-block engine can keep the unchanged placement-order
/// prefix.
fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(20);
    for n in [19usize, 50, 100, 200] {
        let (circuit, canvas, sp0) = snap_workload(n, 0x1C4E ^ n as u64);

        let mut sp = sp0.clone();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::new(canvas);
        group.bench_function(BenchmarkId::new("full_walk", n), |b| {
            b.iter(|| {
                perturb_pair(&mut sp, &mut rng);
                realize_floorplan(
                    &sp.positive,
                    &sp.negative,
                    &sp.shapes,
                    &circuit,
                    canvas,
                    &mut scratch,
                    &mut fp,
                )
            })
        });

        let mut sp = sp0.clone();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::new(canvas);
        let mut cache = RealizeCache::new();
        group.bench_function(BenchmarkId::new("incremental_walk", n), |b| {
            b.iter(|| {
                perturb_pair(&mut sp, &mut rng);
                realize_floorplan_incremental(
                    &sp.positive,
                    &sp.negative,
                    &sp.shapes,
                    &circuit,
                    canvas,
                    &mut scratch,
                    &mut fp,
                    &mut cache,
                )
            })
        });

        // The FAST-SP pack alone, full sweep vs the per-position cache.
        let mut sp = sp0.clone();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let (mut x, mut y) = (Vec::new(), Vec::new());
        group.bench_function(BenchmarkId::new("pack_walk_full", n), |b| {
            b.iter(|| {
                perturb_pair(&mut sp, &mut rng);
                pack_coords(&sp.positive, &sp.negative, &sp.shapes, &mut scratch, &mut x, &mut y)
            })
        });
        let mut sp = sp0.clone();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut scratch = PackScratch::with_capacity(n);
        let mut pack_cache = PackCache::new();
        group.bench_function(BenchmarkId::new("pack_walk_cached", n), |b| {
            b.iter(|| {
                perturb_pair(&mut sp, &mut rng);
                pack_coords_cached(
                    &sp.positive,
                    &sp.negative,
                    &sp.shapes,
                    &mut scratch,
                    &mut pack_cache,
                    &mut x,
                    &mut y,
                )
            })
        });
    }

    // End-to-end cost evaluation (pack + realization + metrics + memo) on the
    // largest paper circuit, with the incremental layers on and off.
    let circuit = generators::bias19();
    let problem = Problem::new(&circuit);
    for (label, realize, metrics) in [
        ("cost_walk_incremental", true, true),
        ("cost_walk_full", false, false),
    ] {
        let mut cache = CostCache::new(&problem);
        cache.set_incremental(realize);
        cache.set_incremental_metrics(metrics);
        let mut rng = StdRng::seed_from_u64(0x1C4E);
        let mut walk = Candidate::random(problem.num_blocks(), &mut rng);
        group.bench_function(BenchmarkId::new(label, "bias19"), |b| {
            b.iter(|| {
                let _ = walk.perturb(&mut rng);
                problem.cost_cached(&walk, &mut cache)
            })
        });
    }
    group.finish();
}

fn bench_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("masks");
    group.sample_size(20);
    let (circuit, fp, block, shapes) = masks_workload();
    group.bench_function("positional_masks_bias19", |b| {
        b.iter(|| positional_masks(&circuit, &fp, block, &shapes))
    });
    group.finish();
}

/// One GA generation (40 candidates, Bias-2) through the serial loop and the
/// EvalPool. Every candidate is perturbed between iterations so the memo
/// cannot short-circuit the evaluations — the workload is the steady-state
/// generation-over-generation drift GA actually produces.
fn bench_eval_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_pool");
    group.sample_size(20);
    let circuit = generators::bias19();
    let problem = Problem::new(&circuit);
    const POPULATION: usize = 40;

    let mut rng = StdRng::seed_from_u64(0xE7A1);
    let mut generation: Vec<Candidate> = (0..POPULATION)
        .map(|_| Candidate::random(problem.num_blocks(), &mut rng))
        .collect();

    let mut cache = CostCache::new(&problem);
    group.bench_function(BenchmarkId::new("serial_generation", POPULATION), |b| {
        b.iter(|| {
            for candidate in &mut generation {
                let _ = candidate.perturb(&mut rng);
            }
            generation
                .iter()
                .map(|c| problem.cost_cached(c, &mut cache))
                .sum::<f64>()
        })
    });

    for workers in [1usize, 2, 4] {
        let mut pool = EvalPool::new(&problem, workers);
        let mut rng = StdRng::seed_from_u64(0xE7A1 ^ workers as u64);
        group.bench_function(BenchmarkId::new("pool_generation", workers), |b| {
            b.iter(|| {
                for candidate in &mut generation {
                    let _ = candidate.perturb(&mut rng);
                }
                pool.evaluate(&problem, &generation).iter().sum::<f64>()
            })
        });
    }
    group.finish();
}

/// The SA cost walk under the locality-aware move mix: identical machinery to
/// `incremental/cost_walk_incremental`, but with the proposal distribution
/// biased toward adjacent swaps — the knob that actually shrinks the
/// dirty sets the PR 3/4 engines diff against.
fn bench_sa_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_locality");
    group.sample_size(20);
    let circuit = generators::bias19();
    let problem = Problem::new(&circuit);
    for (label, bias) in [("uniform", 0.0), ("bias_50", 0.5), ("bias_90", 0.9)] {
        let mix = MoveMix::local(bias);
        let mut cache = CostCache::new(&problem);
        let mut rng = StdRng::seed_from_u64(0x10CA);
        let mut walk = Candidate::random(problem.num_blocks(), &mut rng);
        group.bench_function(BenchmarkId::new("cost_walk", label), |b| {
            b.iter(|| {
                let _ = walk.perturb_with(&mix, &mut rng);
                problem.cost_cached(&walk, &mut cache)
            })
        });
    }
    group.finish();
}

/// Pure per-batch dispatch overhead: a trivial 8-item workload dispatched at
/// 2 workers through the spawn-per-call shim and through a persistent parked
/// pool. The work itself is negligible, so the measurement is the fixed cost
/// per batch each model charges — the number the parked pool exists to cut.
fn bench_pool_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_overhead");
    group.sample_size(20);
    const WORKERS: usize = 2;
    let items: Vec<u64> = (0..8).collect();

    let mut states = vec![0u64; WORKERS];
    group.bench_function("spawn_per_call", |b| {
        b.iter(|| afp_par::parallel_map_scoped(&items, &mut states, |_, &x| x))
    });

    let mut pool = WorkerPool::new(WORKERS);
    let mut states = vec![0u64; WORKERS];
    group.bench_function("parked_batch", |b| {
        b.iter(|| pool.map_scoped(&items, &mut states, |_, &x| x))
    });
    group.finish();
}

/// Multi-start SA: 4 chains on Bias-2 racing over the persistent pool, at 1
/// and 2 pool workers. Chains are whole SA runs, so this measures the
/// coarse-grained parallel shape (one warm cache per worker, zero cross-chain
/// coordination) rather than per-generation batching.
fn bench_multistart(c: &mut Criterion) {
    let mut group = c.benchmark_group("multistart");
    group.sample_size(10);
    let circuit = generators::bias19();
    for workers in [1usize, 2] {
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 400,
                ..SaConfig::table1()
            },
            chains: 4,
            workers,
        };
        group.bench_function(BenchmarkId::new("chains4_bias19", workers), |b| {
            b.iter(|| multistart_sa(&circuit, &cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pack,
    bench_snap,
    bench_incremental,
    bench_masks,
    bench_eval_pool,
    bench_sa_locality,
    bench_pool_overhead,
    bench_multistart
);
criterion_main!(benches);

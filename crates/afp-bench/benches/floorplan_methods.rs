//! Criterion benchmark behind the **runtime column of Table I**: wall-clock
//! floorplanning time per method on a seen (OTA-1, 5 blocks) and an unseen
//! (Driver, 17 blocks) circuit.
//!
//! The absolute numbers depend on the machine, but the *ordering* the paper
//! reports must hold: RL zero-shot inference ≪ SA < GA/PSO ≪ per-instance RL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afp_circuit::generators;
use afp_gnn::greedy_floorplan;
use afp_metaheuristics::{
    genetic_algorithm, particle_swarm, sequence_pair_rl, simulated_annealing, GaConfig, PsoConfig,
    SaConfig, SpRlConfig,
};
use afp_rl::{AgentConfig, FloorplanAgent};

fn bench_methods(c: &mut Criterion) {
    let circuits = vec![("OTA-1", generators::ota5()), ("Driver", generators::driver())];
    let mut group = c.benchmark_group("table1_runtime");
    group.sample_size(10);

    for (name, circuit) in &circuits {
        // R-GCN RL zero-shot inference (untrained weights; inference cost is
        // architecture-dependent, not training-dependent).
        let mut agent = FloorplanAgent::new(AgentConfig::small());
        group.bench_with_input(BenchmarkId::new("rgcn_rl_0shot", name), circuit, |b, circ| {
            b.iter(|| agent.solve(circ))
        });

        group.bench_with_input(BenchmarkId::new("greedy", name), circuit, |b, circ| {
            b.iter(|| greedy_floorplan(circ))
        });

        group.bench_with_input(BenchmarkId::new("sa", name), circuit, |b, circ| {
            b.iter(|| simulated_annealing(circ, &SaConfig::small()))
        });

        group.bench_with_input(BenchmarkId::new("ga", name), circuit, |b, circ| {
            b.iter(|| genetic_algorithm(circ, &GaConfig::small()))
        });

        group.bench_with_input(BenchmarkId::new("pso", name), circuit, |b, circ| {
            b.iter(|| particle_swarm(circ, &PsoConfig::small()))
        });

        group.bench_with_input(BenchmarkId::new("sp_rl", name), circuit, |b, circ| {
            b.iter(|| sequence_pair_rl(circ, &SpRlConfig::small()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);

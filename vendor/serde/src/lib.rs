//! Offline stub of `serde`.
//!
//! The container this workspace builds in has no registry access, and nothing
//! in the workspace performs runtime (de)serialization — the derives exist so
//! that the public data types carry the usual serde annotations. This stub
//! provides `Serialize` / `Deserialize` as empty marker traits and re-exports
//! the matching stub derives from [`serde_derive`].
//!
//! Swapping in the real serde later is a one-line change in the workspace
//! manifest; no source edits are required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
///
/// The real trait is `Deserialize<'de>`; the lifetime is dropped here because
/// no code in the workspace names it.
pub trait Deserialize {}

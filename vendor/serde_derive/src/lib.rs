//! Offline stub of `serde_derive`.
//!
//! The workspace is built in a hermetic container without registry access, so
//! the real `serde`/`serde_derive` crates cannot be fetched. Nothing in the
//! workspace actually serializes at runtime — the `#[derive(Serialize,
//! Deserialize)]` annotations only exist so that downstream users *could* plug
//! in real serde — so the derives here simply emit empty marker-trait impls.
//!
//! The parser is deliberately tiny: it scans the item's tokens for the
//! `struct` / `enum` keyword, takes the following identifier as the type name,
//! and captures any generic parameter list so that generic types keep
//! compiling. `where`-clauses on the type itself are not supported (none of
//! the workspace types use them).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Serialize")
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive_marker(input, "Deserialize")
}

fn derive_marker(input: TokenStream, trait_name: &str) -> TokenStream {
    let (name, generics) = parse_name_and_generics(input);
    let impl_block = match generics {
        Some(g) => format!(
            "impl<{g}> ::serde::{trait_name} for {name}<{g_idents}> {{}}",
            g = g,
            g_idents = generic_idents(&g),
        ),
        None => format!("impl ::serde::{trait_name} for {name} {{}}"),
    };
    impl_block.parse().expect("stub serde derive emitted invalid tokens")
}

/// Extracts the type name and the raw generic parameter list (without angle
/// brackets) from a `struct` / `enum` definition.
fn parse_name_and_generics(input: TokenStream) -> (String, Option<String>) {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    tokens.next();
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("expected type name after struct/enum, got {:?}", other),
                };
                let generics = collect_generics(&mut tokens);
                return (name, generics);
            }
            _ => {}
        }
    }
    panic!("stub serde derive: no struct/enum found in input");
}

/// If the next token is `<`, collects everything up to the matching `>`.
fn collect_generics(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Option<String> {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return None,
    }
    tokens.next();
    let mut depth = 1usize;
    let mut out = String::new();
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push_str(&tt.to_string());
        out.push(' ');
    }
    Some(out.trim().to_string())
}

/// Reduces a generic parameter list to the bare parameter names so they can be
/// repeated on the implementing type (`T: Clone, 'a` → `T, 'a`). Defaults
/// (`T = f64`) and bounds are dropped.
fn generic_idents(generics: &str) -> String {
    generics
        .split(',')
        .map(|param| {
            let param = param.trim();
            let head = param
                .split(|c| c == ':' || c == '=')
                .next()
                .unwrap_or(param)
                .trim();
            head.to_string()
        })
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join(", ")
}

//! Offline stub of `criterion` (0.5 API subset).
//!
//! The container has no registry access, so this crate implements the slice
//! of the criterion API the workspace benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — on top of plain
//! `std::time::Instant` timing.
//!
//! Methodology: each benchmark is warmed up, an iteration count is calibrated
//! so one sample takes roughly [`TARGET_SAMPLE`], then `sample_size` samples
//! are collected and the **median per-iteration time** is reported. That is a
//! simplification of real criterion (no outlier analysis, no HTML reports)
//! but is stable enough for the `BENCH_pack.json` perf trajectory this
//! repository tracks. Results also land in
//! `target/criterion-stub/<name>.json` so harnesses can scrape them.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample time budget used to calibrate iteration counts.
pub const TARGET_SAMPLE: Duration = Duration::from_millis(20);

pub use std::hint::black_box;

/// Entry point handed to the `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, &mut f);
        self
    }
}

/// A named benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with a fixed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Drives the measured closure: `b.iter(|| work())`.
#[derive(Debug)]
pub struct Bencher {
    mode: BencherMode,
    /// Median nanoseconds per iteration, filled after a measuring run.
    median_ns: f64,
}

#[derive(Debug)]
enum BencherMode {
    /// Calibration run: execute `iters` iterations once, record elapsed time.
    Calibrate { iters: u64, elapsed: Duration },
    /// Measurement run: collect `samples` timed samples of `iters` iterations.
    Measure {
        iters: u64,
        samples: usize,
        sample_ns: Vec<f64>,
    },
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match &mut self.mode {
            BencherMode::Calibrate { iters, elapsed } => {
                let start = Instant::now();
                for _ in 0..*iters {
                    black_box(routine());
                }
                *elapsed = start.elapsed();
            }
            BencherMode::Measure {
                iters,
                samples,
                sample_ns,
            } => {
                for _ in 0..*samples {
                    let start = Instant::now();
                    for _ in 0..*iters {
                        black_box(routine());
                    }
                    let ns = start.elapsed().as_nanos() as f64 / *iters as f64;
                    sample_ns.push(ns);
                }
                sample_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.median_ns = sample_ns[sample_ns.len() / 2];
            }
        }
    }
}

/// Calibrates an iteration count, measures, prints and records the median.
fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    // Calibration: start at 1 iteration and grow until a run is long enough
    // to trust, capping the total calibration cost.
    let mut iters = 1u64;
    let mut per_iter_ns;
    loop {
        let mut b = Bencher {
            mode: BencherMode::Calibrate {
                iters,
                elapsed: Duration::ZERO,
            },
            median_ns: 0.0,
        };
        f(&mut b);
        let elapsed = match b.mode {
            BencherMode::Calibrate { elapsed, .. } => elapsed,
            _ => unreachable!(),
        };
        per_iter_ns = elapsed.as_nanos() as f64 / iters as f64;
        if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let target_iters = (TARGET_SAMPLE.as_nanos() as f64 / per_iter_ns.max(1.0))
        .round()
        .max(1.0) as u64;

    let mut b = Bencher {
        mode: BencherMode::Measure {
            iters: target_iters,
            samples: sample_size,
            sample_ns: Vec::with_capacity(sample_size),
        },
        median_ns: 0.0,
    };
    f(&mut b);
    let median_ns = b.median_ns;
    println!("bench: {name:<55} median {:>12}/iter", format_ns(median_ns));
    record(name, median_ns);
}

/// Renders nanoseconds with an adaptive unit.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Appends the result to `target/criterion-stub/<sanitized name>.json`.
fn record(name: &str, median_ns: f64) {
    let dir = std::path::Path::new("target").join("criterion-stub");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let file: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let body = format!("{{\"name\": \"{name}\", \"median_ns\": {median_ns:.1}}}\n");
    let _ = std::fs::write(dir.join(format!("{file}.json")), body);
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_median() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x) * black_box(x))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}

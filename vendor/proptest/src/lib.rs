//! Offline stub of `proptest`.
//!
//! Implements the subset of the proptest API used by `tests/properties.rs`:
//! the [`proptest!`] macro (with an optional inner
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), [`Strategy`] for
//! numeric ranges / tuples / `prop::collection::vec`, and the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Unlike real proptest there is **no shrinking**: each test runs its body on
//! `cases` deterministically seeded random samples and panics on the first
//! failure, printing the iteration index so a failure is reproducible (the
//! seed is fixed per test).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// Generates values of `Self::Value` from an RNG.
///
/// Mirrors proptest's `Strategy`, with sampling in place of value trees.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// Run-count configuration, mirroring `proptest::prelude::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! Strategy combinators (only what the workspace needs).

    pub use super::Strategy;
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use rand::rngs::StdRng;
    use rand::Rng;

    use super::Strategy;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};

    pub mod prop {
        //! The `prop::` module alias exposed by the prelude.

        pub use crate::collection;
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Declares property tests: each function runs its body over `cases`
/// deterministically seeded samples of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs $config; $($rest)*);
    };
    (
        @funcs $config:expr;
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                // Seed derived from the test name so properties are
                // independent and every run is reproducible.
                let seed = {
                    let name = stringify!($name);
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                };
                let mut rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(let $arg = ($strategy).sample(&mut rng);)+
                    let run = || $body;
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest stub: property {} failed at case {}/{} (seed {seed})",
                            stringify!($name), case + 1, config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Vec strategies honour their length range.
        #[test]
        fn vec_lengths(v in prop::collection::vec((0.0f64..5.0, 1u32..4), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for (f, u) in v {
                prop_assert!((0.0..5.0).contains(&f));
                prop_assert!((1..4).contains(&u));
            }
        }
    }

    proptest! {
        /// The configless form defaults to 256 cases.
        #[test]
        fn default_config_form(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }
}

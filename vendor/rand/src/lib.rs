//! Offline stub of `rand` (0.8 API subset).
//!
//! The workspace builds hermetically without registry access, so this crate
//! re-implements exactly the slice of the `rand` 0.8 API the code base uses:
//!
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer / float
//!   ranges), `gen_bool`,
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a small,
//! high-quality, deterministic generator. The streams differ from the real
//! `rand::rngs::StdRng` (ChaCha12), which is fine: nothing in the workspace
//! depends on specific draw values, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Random value generation, mirroring `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` built from the top 24 bits.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Samples a value of a [`Standard`]-distributed type (`rng.gen()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by `rng.gen()`, mirroring rand's `Standard` distribution.
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f32()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable by `rng.gen_range(..)`, mirroring rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (<$t as Standard>::sample(rng)) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (<$t as Standard>::sample(rng)) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (only [`StdRng`] is provided).

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state; the
            // state is never all-zero because SplitMix64 is a bijection
            // and its outputs for distinct inputs cannot all collide to 0.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers, mirroring `rand::seq`.

    use super::Rng;

    /// `shuffle` / `choose` on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let inc = rng.gen_range(0usize..=4);
            assert!(inc <= 4);
        }
    }

    #[test]
    fn gen_unit_floats() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 elements should move");
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! Integration tests spanning the whole workspace: circuit generation →
//! floorplanning (RL agent, greedy and baselines) → global routing →
//! procedural layout completion.

use analog_floorplan::circuit::{generators, recognition};
use analog_floorplan::core::LayoutPipeline;
use analog_floorplan::layout::constraints::count_violations;
use analog_floorplan::metaheuristics::{Baseline, SaConfig};
use analog_floorplan::rl::{AgentConfig, FloorplanAgent};

#[test]
fn greedy_pipeline_lays_out_every_evaluation_circuit() {
    for benchmark in generators::evaluation_set() {
        let circuit = benchmark.circuit;
        let mut pipeline = LayoutPipeline::with_greedy();
        let result = pipeline.run(&circuit);
        assert_eq!(
            result.floorplan.num_placed(),
            circuit.num_blocks(),
            "{}: not all blocks placed",
            circuit.name
        );
        assert!(result.layout.area_um2 > 0.0, "{}: empty layout", circuit.name);
        assert!(
            result.layout.routing.incomplete_nets() == 0,
            "{}: {} nets could not be routed",
            circuit.name,
            result.layout.routing.incomplete_nets()
        );
        assert!(
            result.floorplan_metrics.dead_space < 0.95,
            "{}: implausible dead space",
            circuit.name
        );
    }
}

#[test]
fn untrained_agent_produces_valid_floorplans_via_masking() {
    // Even an untrained policy must respect the positional masks: whatever it
    // places is overlap-free and constraint-consistent. On circuits without
    // positional constraints an episode can never dead-end, so it must also
    // always run to completion. (On heavily constrained circuits an untrained
    // policy may paint itself into a corner — that is exactly the −50 penalty
    // case of the paper — so completion is only asserted when it happened.)
    let mut agent = FloorplanAgent::new(AgentConfig::small());

    let unconstrained = generators::oscillator();
    let result = agent.solve(&unconstrained);
    assert_eq!(
        result.floorplan.num_placed(),
        unconstrained.num_blocks(),
        "unconstrained circuit must always complete"
    );

    for circuit in [generators::ota5(), generators::rs_latch()] {
        let result = agent.solve(&circuit);
        // Everything that was placed respects overlap rules by construction;
        // constraint violations may only stem from *missing* partners, never
        // from mis-placed ones.
        let placed = result.floorplan.num_placed();
        if placed == circuit.num_blocks() {
            assert_eq!(
                count_violations(&circuit, &result.floorplan),
                0,
                "{}: masked agent violated constraints",
                circuit.name
            );
        } else {
            assert!(
                result.termination == analog_floorplan::rl::Termination::DeadEnd,
                "{}: incomplete episode must be a dead end",
                circuit.name
            );
        }
    }
}

#[test]
fn baseline_and_agent_metrics_are_comparable_units() {
    // The same reward definition is used for every method, so values must be
    // on the same scale (negative, finite, not the violation penalty for
    // complete unconstrained floorplans).
    let circuit = generators::ota3();
    let mut sa_pipeline = LayoutPipeline::with_baseline(Baseline::Sa(SaConfig::small()), 1);
    let sa = sa_pipeline.run(&circuit);
    let mut agent_pipeline = LayoutPipeline::with_agent(FloorplanAgent::new(AgentConfig::small()));
    let agent = agent_pipeline.run(&circuit);
    for (name, reward) in [("SA", sa.floorplan_reward), ("agent", agent.floorplan_reward)] {
        assert!(reward.is_finite(), "{name} reward not finite");
        assert!(reward < 0.0, "{name} reward should be negative");
        assert!(reward > -50.0, "{name} tripped the violation penalty");
    }
}

#[test]
fn recognition_feeds_the_pipeline_end_to_end() {
    let schematic = generators::ota8_schematic();
    let circuit = recognition::recognize(&schematic);
    assert!(circuit.num_blocks() >= 3);
    let mut pipeline = LayoutPipeline::with_greedy();
    let result = pipeline.run_from_schematic(&schematic);
    assert_eq!(result.circuit.num_blocks(), circuit.num_blocks());
    assert!(result.layout.wirelength_um > 0.0);
    // The SVG render of the routed layout is a valid standalone document.
    let svg = result.to_svg();
    assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
}

#[test]
fn congestion_spacing_makes_baseline_floorplans_larger() {
    use analog_floorplan::metaheuristics::Problem;
    let circuit = generators::ota8();
    let with_spacing = Problem::new(&circuit);
    let without = Problem::new(&circuit).without_spacing();
    let candidate = analog_floorplan::metaheuristics::Candidate::identity(
        circuit.num_blocks(),
        with_spacing.shape_sets(),
    );
    let area_with = with_spacing.realize(&candidate).bounding_box().unwrap().area();
    let area_without = without.realize(&candidate).bounding_box().unwrap().area();
    assert!(
        area_with > area_without,
        "congestion-aware spacing should enlarge the floorplan ({area_with} vs {area_without})"
    );
}

//! Integration tests of the learning stack: R-GCN pre-training, curriculum RL
//! training, zero-shot transfer and few-shot fine-tuning.

use analog_floorplan::circuit::generators;
use analog_floorplan::gnn::{pretrain, PretrainConfig};
use analog_floorplan::rl::{train, train_with_encoder, TrainConfig};

// Every config below pins its RNG seed explicitly rather than relying on the
// `small()` defaults: these integration tests are tier-1, and an unseeded (or
// implicitly seeded) RNG anywhere in the stack would make their pass/fail
// state depend on the run. With the seeds fixed, every assertion below is
// deterministic.

#[test]
fn pretrained_encoder_plugs_into_rl_training() {
    // Pre-train the reward model on a tiny dataset, keep the encoder, train a
    // tiny agent with it, and verify the trained agent still solves circuits.
    let pretrained = pretrain(&PretrainConfig {
        samples: 8,
        epochs: 2,
        seed: 0xA11,
        ..PretrainConfig::small()
    });
    assert!(pretrained.final_validation_mse().is_finite());
    let encoder = pretrained.model.into_encoder();

    let config = TrainConfig {
        episodes_per_circuit: 6,
        episodes_per_update: 3,
        seed: 0xA12,
        ..TrainConfig::small()
    };
    let mut result = train_with_encoder(encoder, &[generators::ota3()], &config);
    assert!(!result.history.is_empty());
    let solved = result.agent.solve(&generators::ota3());
    assert_eq!(solved.floorplan.num_placed(), 3);
}

#[test]
fn training_history_records_reward_and_kl_curves() {
    // The Fig. 6 reproduction relies on these two series being populated and
    // finite for every update.
    let config = TrainConfig {
        episodes_per_circuit: 8,
        episodes_per_update: 4,
        seed: 0xA13,
        ..TrainConfig::small()
    };
    let result = train(&[generators::ota3(), generators::bias3()], &config);
    assert_eq!(result.history.len(), 4);
    for stats in &result.history {
        assert!(stats.episode_reward_mean.is_finite());
        assert!(stats.approx_kl.is_finite());
        assert!(stats.approx_kl >= -1e-3, "KL must be (numerically) non-negative");
    }
    // The curriculum must have visited both circuits.
    let circuits: Vec<&str> = result.history.iter().map(|h| h.circuit.as_str()).collect();
    assert!(circuits.contains(&"OTA-3"));
    assert!(circuits.contains(&"Bias-3"));
}

#[test]
fn few_shot_fine_tuning_runs_on_an_unseen_circuit() {
    let config = TrainConfig {
        episodes_per_circuit: 4,
        episodes_per_update: 2,
        seed: 0xA14,
        ..TrainConfig::small()
    };
    let mut result = train(&[generators::ota3()], &config);
    let unseen = generators::rs_latch();
    let zero_shot = result.agent.solve(&unseen);
    let rewards = result.agent.fine_tune(&unseen, 6);
    let few_shot = result.agent.solve(&unseen);
    assert_eq!(rewards.len(), 6);
    assert!(zero_shot.reward.is_finite());
    assert!(few_shot.reward.is_finite());
    // Both produce complete floorplans of the unseen circuit.
    assert_eq!(zero_shot.floorplan.num_placed(), unseen.num_blocks());
    assert_eq!(few_shot.floorplan.num_placed(), unseen.num_blocks());
}

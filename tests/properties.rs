//! Property-based tests over the core data structures and invariants, using
//! randomly generated circuits, placements and sequence pairs.

use proptest::prelude::*;

use analog_floorplan::circuit::{Block, BlockId, BlockKind, Shape};
use analog_floorplan::circuit::{node_features, NODE_FEATURE_DIM};
use analog_floorplan::layout::{metrics, Canvas, Cell, Floorplan, SequencePair, GRID_SIZE};
use analog_floorplan::tensor::Tensor;

/// Strategy producing a plausible block area in µm².
fn area_strategy() -> impl Strategy<Value = f64> {
    1.0f64..2000.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Candidate shapes always preserve the block area, whatever the kind.
    #[test]
    fn shape_sets_preserve_area(area in area_strategy(), kind_idx in 0usize..BlockKind::COUNT) {
        let kind = BlockKind::ALL[kind_idx];
        let block = Block::new(BlockId(0), "b", kind, area, 3);
        let shapes = analog_floorplan::circuit::ShapeSet::for_block(&block);
        for s in shapes.shapes() {
            prop_assert!((s.area_um2() - area).abs() < 1e-6 * area.max(1.0));
            prop_assert!(s.width_um > 0.0 && s.height_um > 0.0);
        }
    }

    /// Node features stay within [0, 1] for any area / pin count combination.
    #[test]
    fn node_features_are_bounded(area in area_strategy(), max_area in area_strategy(), pins in 0u32..40) {
        let block = Block::new(BlockId(0), "b", BlockKind::CurrentMirror, area, pins);
        let f = node_features(&block, area.max(max_area));
        prop_assert_eq!(f.len(), NODE_FEATURE_DIM);
        for v in f {
            prop_assert!((0.0..=1.0).contains(&v), "feature {} out of range", v);
        }
    }

    /// Placement never allows overlapping footprints, regardless of the
    /// requested cells and shapes.
    #[test]
    fn floorplan_never_overlaps(
        placements in prop::collection::vec(((0usize..GRID_SIZE), (0usize..GRID_SIZE), (1.0f64..12.0), (1.0f64..12.0)), 1..12)
    ) {
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        for (i, (x, y, w, h)) in placements.into_iter().enumerate() {
            let _ = fp.place(BlockId(i), 0, Shape::new(w, h), Cell::new(x, y));
        }
        // No two placed rectangles overlap.
        let placed = fp.placed();
        for i in 0..placed.len() {
            for j in (i + 1)..placed.len() {
                prop_assert!(!placed[i].rect.overlaps(&placed[j].rect),
                    "blocks {} and {} overlap", i, j);
            }
        }
        // Dead space stays in [0, 1).
        let ds = metrics::dead_space(&fp);
        prop_assert!((0.0..1.0).contains(&ds) || placed.is_empty());
    }

    /// Sequence-pair packing is always overlap-free and no larger than the
    /// sum of block dimensions.
    #[test]
    fn sequence_pair_packing_is_overlap_free(
        dims in prop::collection::vec((1.0f64..20.0, 1.0f64..20.0), 2..10),
        seed in 0u64..1000
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let shapes: Vec<Shape> = dims.iter().map(|&(w, h)| Shape::new(w, h)).collect();
        let mut sp = SequencePair::identity(shapes.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        sp.positive.shuffle(&mut rng);
        sp.negative.shuffle(&mut rng);
        let packed = sp.pack();
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                prop_assert!(!packed.rects[i].overlaps(&packed.rects[j]),
                    "sequence pair packed blocks {} and {} on top of each other", i, j);
            }
        }
        let total_w: f64 = dims.iter().map(|d| d.0).sum();
        let total_h: f64 = dims.iter().map(|d| d.1).sum();
        prop_assert!(packed.width <= total_w + 1e-9);
        prop_assert!(packed.height <= total_h + 1e-9);
    }

    /// Softmax over arbitrary finite logits is a probability distribution.
    #[test]
    fn softmax_is_a_distribution(values in prop::collection::vec(-30.0f32..30.0, 1..64)) {
        let t = Tensor::from_slice(&values);
        let s = t.softmax();
        let sum: f32 = s.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
        prop_assert!(s.data().iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    /// HPWL is translation-invariant: shifting a whole floorplan does not
    /// change the wirelength.
    #[test]
    fn hpwl_is_translation_invariant(dx in 0usize..8, dy in 0usize..8) {
        use analog_floorplan::circuit::generators;
        let circuit = generators::ota3();
        let canvas = Canvas::new(64.0, 64.0);
        let build = |ox: usize, oy: usize| {
            let mut fp = Floorplan::new(canvas);
            let order = circuit.blocks_by_decreasing_area();
            let mut x = ox;
            for id in order {
                let area = circuit.block(id).unwrap().area_um2;
                let shape = Shape::from_area_and_aspect(area, 1.0);
                fp.place(id, 0, shape, Cell::new(x, oy)).unwrap();
                let (gw, _) = fp.grid_footprint(&shape);
                x += gw;
            }
            fp
        };
        let base = build(0, 0);
        let shifted = build(dx, dy);
        let h0 = metrics::hpwl(&circuit, &base);
        let h1 = metrics::hpwl(&circuit, &shifted);
        prop_assert!((h0 - h1).abs() < 1e-6, "HPWL changed under translation: {} vs {}", h0, h1);
    }
}

proptest! {
    // 200+ random pairs: the acceptance bar of the FAST-SP packing engine.
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Differential test of the packing engines: the FAST-SP O(n log n) LCS
    /// evaluation must produce byte-identical positions and enclosing
    /// dimensions to the legacy O(n³) relaxation oracle (`legacy-pack`
    /// feature), and the packing must be overlap-free. Block counts go up to
    /// 64 — beyond every circuit in the paper.
    #[test]
    fn fast_sp_packing_matches_legacy_relaxation(
        dims in prop::collection::vec((0.5f64..30.0, 0.5f64..30.0), 2..65),
        seed in 0u64..1_000_000
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let shapes: Vec<Shape> = dims.iter().map(|&(w, h)| Shape::new(w, h)).collect();
        let mut sp = SequencePair::identity(shapes);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        sp.positive.shuffle(&mut rng);
        sp.negative.shuffle(&mut rng);
        let fast = sp.pack();
        let legacy = sp.pack_relaxation();
        prop_assert_eq!(&fast.positions, &legacy.positions);
        prop_assert_eq!(fast.width, legacy.width);
        prop_assert_eq!(fast.height, legacy.height);
        for i in 0..fast.rects.len() {
            for j in (i + 1)..fast.rects.len() {
                prop_assert!(
                    !fast.rects[i].overlaps(&fast.rects[j]),
                    "FAST-SP packed blocks {} and {} on top of each other", i, j
                );
            }
        }
    }
}

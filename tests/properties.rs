//! Property-based tests over the core data structures and invariants, using
//! randomly generated circuits, placements and sequence pairs.

use proptest::prelude::*;

use analog_floorplan::circuit::{Block, BlockId, BlockKind, Shape};
use analog_floorplan::circuit::{node_features, NODE_FEATURE_DIM};
use analog_floorplan::layout::{metrics, Canvas, Cell, Floorplan, SequencePair, GRID_SIZE};
use analog_floorplan::tensor::Tensor;

/// Scalar `Vec<bool>` occupancy grid — the pre-bitboard reference
/// implementation of `fits`, the spiral nearest-fit scan and the positional
/// free-space test, retained as the differential oracle for the `BitGrid`
/// word-level engine (mirroring how `legacy-pack` oracles FAST-SP). The side
/// is parametric so the same oracle also checks multi-word grids past the
/// historical 64-column ceiling.
struct ScalarGrid {
    side: usize,
    occ: Vec<bool>,
}

impl ScalarGrid {
    fn new() -> Self {
        ScalarGrid::with_side(GRID_SIZE)
    }

    fn with_side(side: usize) -> Self {
        ScalarGrid {
            side,
            occ: vec![false; side * side],
        }
    }

    fn fits(&self, cell: Cell, gw: usize, gh: usize) -> bool {
        if cell.x + gw > self.side || cell.y + gh > self.side {
            return false;
        }
        for dy in 0..gh {
            for dx in 0..gw {
                if self.occ[(cell.y + dy) * self.side + cell.x + dx] {
                    return false;
                }
            }
        }
        true
    }

    fn set_rect(&mut self, cell: Cell, gw: usize, gh: usize) {
        for dy in 0..gh {
            for dx in 0..gw {
                self.occ[(cell.y + dy) * self.side + cell.x + dx] = true;
            }
        }
    }

    /// The historical spiral nearest-fit scan, verbatim.
    fn find_nearest_fit(&self, start: Cell, gw: usize, gh: usize) -> Option<Cell> {
        if self.fits(start, gw, gh) {
            return Some(start);
        }
        for radius in 1..self.side {
            for dy in -(radius as isize)..=(radius as isize) {
                for dx in -(radius as isize)..=(radius as isize) {
                    if dx.abs().max(dy.abs()) != radius as isize {
                        continue;
                    }
                    let x = start.x as isize + dx;
                    let y = start.y as isize + dy;
                    if x < 0 || y < 0 {
                        continue;
                    }
                    let cell = Cell::new(x as usize, y as usize);
                    if cell.x < self.side && cell.y < self.side && self.fits(cell, gw, gh) {
                        return Some(cell);
                    }
                }
            }
        }
        None
    }
}

/// Strategy producing a plausible block area in µm².
fn area_strategy() -> impl Strategy<Value = f64> {
    1.0f64..2000.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Candidate shapes always preserve the block area, whatever the kind.
    #[test]
    fn shape_sets_preserve_area(area in area_strategy(), kind_idx in 0usize..BlockKind::COUNT) {
        let kind = BlockKind::ALL[kind_idx];
        let block = Block::new(BlockId(0), "b", kind, area, 3);
        let shapes = analog_floorplan::circuit::ShapeSet::for_block(&block);
        for s in shapes.shapes() {
            prop_assert!((s.area_um2() - area).abs() < 1e-6 * area.max(1.0));
            prop_assert!(s.width_um > 0.0 && s.height_um > 0.0);
        }
    }

    /// Node features stay within [0, 1] for any area / pin count combination.
    #[test]
    fn node_features_are_bounded(area in area_strategy(), max_area in area_strategy(), pins in 0u32..40) {
        let block = Block::new(BlockId(0), "b", BlockKind::CurrentMirror, area, pins);
        let f = node_features(&block, area.max(max_area));
        prop_assert_eq!(f.len(), NODE_FEATURE_DIM);
        for v in f {
            prop_assert!((0.0..=1.0).contains(&v), "feature {} out of range", v);
        }
    }

    /// Placement never allows overlapping footprints, regardless of the
    /// requested cells and shapes.
    #[test]
    fn floorplan_never_overlaps(
        placements in prop::collection::vec(((0usize..GRID_SIZE), (0usize..GRID_SIZE), (1.0f64..12.0), (1.0f64..12.0)), 1..12)
    ) {
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        for (i, (x, y, w, h)) in placements.into_iter().enumerate() {
            let _ = fp.place(BlockId(i), 0, Shape::new(w, h), Cell::new(x, y));
        }
        // No two placed rectangles overlap.
        let placed = fp.placed();
        for i in 0..placed.len() {
            for j in (i + 1)..placed.len() {
                prop_assert!(!placed[i].rect.overlaps(&placed[j].rect),
                    "blocks {} and {} overlap", i, j);
            }
        }
        // Dead space stays in [0, 1).
        let ds = metrics::dead_space(&fp);
        prop_assert!((0.0..1.0).contains(&ds) || placed.is_empty());
    }

    /// Sequence-pair packing is always overlap-free and no larger than the
    /// sum of block dimensions.
    #[test]
    fn sequence_pair_packing_is_overlap_free(
        dims in prop::collection::vec((1.0f64..20.0, 1.0f64..20.0), 2..10),
        seed in 0u64..1000
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let shapes: Vec<Shape> = dims.iter().map(|&(w, h)| Shape::new(w, h)).collect();
        let mut sp = SequencePair::identity(shapes.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        sp.positive.shuffle(&mut rng);
        sp.negative.shuffle(&mut rng);
        let packed = sp.pack();
        for i in 0..shapes.len() {
            for j in (i + 1)..shapes.len() {
                prop_assert!(!packed.rects[i].overlaps(&packed.rects[j]),
                    "sequence pair packed blocks {} and {} on top of each other", i, j);
            }
        }
        let total_w: f64 = dims.iter().map(|d| d.0).sum();
        let total_h: f64 = dims.iter().map(|d| d.1).sum();
        prop_assert!(packed.width <= total_w + 1e-9);
        prop_assert!(packed.height <= total_h + 1e-9);
    }

    /// Softmax over arbitrary finite logits is a probability distribution.
    #[test]
    fn softmax_is_a_distribution(values in prop::collection::vec(-30.0f32..30.0, 1..64)) {
        let t = Tensor::from_slice(&values);
        let s = t.softmax();
        let sum: f32 = s.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
        prop_assert!(s.data().iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    /// HPWL is translation-invariant: shifting a whole floorplan does not
    /// change the wirelength.
    #[test]
    fn hpwl_is_translation_invariant(dx in 0usize..8, dy in 0usize..8) {
        use analog_floorplan::circuit::generators;
        let circuit = generators::ota3();
        let canvas = Canvas::new(64.0, 64.0);
        let build = |ox: usize, oy: usize| {
            let mut fp = Floorplan::new(canvas);
            let order = circuit.blocks_by_decreasing_area();
            let mut x = ox;
            for id in order {
                let area = circuit.block(id).unwrap().area_um2;
                let shape = Shape::from_area_and_aspect(area, 1.0);
                fp.place(id, 0, shape, Cell::new(x, oy)).unwrap();
                let (gw, _) = fp.grid_footprint(&shape);
                x += gw;
            }
            fp
        };
        let base = build(0, 0);
        let shifted = build(dx, dy);
        let h0 = metrics::hpwl(&circuit, &base);
        let h1 = metrics::hpwl(&circuit, &shifted);
        prop_assert!((h0 - h1).abs() < 1e-6, "HPWL changed under translation: {} vs {}", h0, h1);
    }
}

proptest! {
    // 200+ random pairs: the acceptance bar of the FAST-SP packing engine.
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Differential test of the packing engines: the FAST-SP O(n log n) LCS
    /// evaluation must produce byte-identical positions and enclosing
    /// dimensions to the legacy O(n³) relaxation oracle (`legacy-pack`
    /// feature), and the packing must be overlap-free. Block counts go up to
    /// 64 — beyond every circuit in the paper.
    #[test]
    fn fast_sp_packing_matches_legacy_relaxation(
        dims in prop::collection::vec((0.5f64..30.0, 0.5f64..30.0), 2..65),
        seed in 0u64..1_000_000
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let shapes: Vec<Shape> = dims.iter().map(|&(w, h)| Shape::new(w, h)).collect();
        let mut sp = SequencePair::identity(shapes);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        sp.positive.shuffle(&mut rng);
        sp.negative.shuffle(&mut rng);
        let fast = sp.pack();
        let legacy = sp.pack_relaxation();
        prop_assert_eq!(&fast.positions, &legacy.positions);
        prop_assert_eq!(fast.width, legacy.width);
        prop_assert_eq!(fast.height, legacy.height);
        for i in 0..fast.rects.len() {
            for j in (i + 1)..fast.rects.len() {
                prop_assert!(
                    !fast.rects[i].overlaps(&fast.rects[j]),
                    "FAST-SP packed blocks {} and {} on top of each other", i, j
                );
            }
        }
    }
}

proptest! {
    // 200+ random cases each: the acceptance bar of the BitGrid occupancy
    // engine — every word-level query must agree cell-for-cell with the
    // scalar `Vec<bool>` reference it replaced.
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Differential test of the occupancy engine: after a random placement
    /// sequence, `Floorplan::fits`, the free-anchor bitmask and the
    /// bitboard nearest-fit search must agree with the scalar grid and the
    /// historical spiral scan on every cell.
    #[test]
    fn bitboard_fits_anchors_and_nearest_fit_match_scalar(
        placements in prop::collection::vec(
            ((0usize..GRID_SIZE), (0usize..GRID_SIZE), (1.0f64..12.0), (1.0f64..12.0)), 1..14),
        footprint in ((1usize..11), (1usize..11)),
        start in ((0usize..GRID_SIZE), (0usize..GRID_SIZE)),
    ) {
        use analog_floorplan::layout::sequence_pair::find_nearest_fit;
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        let mut scalar = ScalarGrid::new();
        for (i, (x, y, w, h)) in placements.into_iter().enumerate() {
            if fp.place(BlockId(i), 0, Shape::new(w, h), Cell::new(x, y)).is_ok() {
                let p = fp.placed().last().unwrap();
                scalar.set_rect(p.cell, p.grid_w, p.grid_h);
            }
        }
        let (gw, gh) = footprint;
        let anchors = fp.grid().free_anchors(gw, gh);
        for y in 0..GRID_SIZE {
            for x in 0..GRID_SIZE {
                let cell = Cell::new(x, y);
                let expected = scalar.fits(cell, gw, gh);
                prop_assert_eq!(fp.fits(cell, gw, gh), expected,
                    "fits diverges at ({}, {}) for {}x{}", x, y, gw, gh);
                prop_assert_eq!(anchors.get(x, y), expected,
                    "anchor bit diverges at ({}, {}) for {}x{}", x, y, gw, gh);
            }
        }
        let start = Cell::new(start.0, start.1);
        prop_assert_eq!(
            find_nearest_fit(&fp, start, gw, gh),
            scalar.find_nearest_fit(start, gw, gh),
            "nearest fit diverges from spiral scan at start ({}, {})", start.x, start.y
        );
    }

    /// The positional mask `f_p` built from the anchor bitmask must equal the
    /// scalar reference (constraint mask ANDed with per-cell footprint
    /// probes), constraints included.
    #[test]
    fn positional_mask_matches_scalar_reference(
        placements in prop::collection::vec(
            ((0usize..GRID_SIZE), (0usize..GRID_SIZE), (2.0f64..8.0), (2.0f64..8.0)), 0..4),
        shape_dims in ((1.0f64..10.0), (1.0f64..10.0)),
    ) {
        use analog_floorplan::circuit::{Circuit, NetClass};
        use analog_floorplan::layout::constraints::constraint_mask;
        use analog_floorplan::layout::masks::positional_mask;
        let circuit = Circuit::builder("diff")
            .block("L", BlockKind::CurrentMirror, 16.0, 3)
            .block("R", BlockKind::CurrentMirror, 16.0, 3)
            .block("T", BlockKind::CurrentSource, 16.0, 2)
            .block("U", BlockKind::BiasGenerator, 16.0, 2)
            .net("n", &[("L", "d"), ("R", "d"), ("T", "g")], NetClass::Signal)
            .net("m", &[("T", "d"), ("U", "g")], NetClass::Signal)
            .symmetry_v(&[("L", "R")])
            .alignment(analog_floorplan::circuit::Axis::Horizontal, &["T", "U"])
            .build()
            .unwrap();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        let mut scalar = ScalarGrid::new();
        for (i, (x, y, w, h)) in placements.into_iter().enumerate() {
            if fp.place(BlockId(i), 0, Shape::new(w, h), Cell::new(x, y)).is_ok() {
                let p = fp.placed().last().unwrap();
                scalar.set_rect(p.cell, p.grid_w, p.grid_h);
            }
        }
        let shape = Shape::new(shape_dims.0, shape_dims.1);
        for block in [BlockId(1), BlockId(3)] {
            if fp.is_placed(block) {
                continue;
            }
            let (gw, gh) = fp.grid_footprint(&shape);
            let constraints = constraint_mask(&circuit, &fp, block, gw, gh);
            let mask = positional_mask(&circuit, &fp, block, &shape);
            for y in 0..GRID_SIZE {
                for x in 0..GRID_SIZE {
                    let idx = y * GRID_SIZE + x;
                    let expected = if constraints[idx] == 1.0
                        && scalar.fits(Cell::new(x, y), gw, gh)
                    {
                        1.0f32
                    } else {
                        0.0
                    };
                    prop_assert_eq!(mask[idx], expected,
                        "positional mask diverges at ({}, {}) for block {:?}", x, y, block);
                }
            }
        }
    }

    /// Differential test of the incremental realization engine: after any
    /// random perturbation sequence (sequence swaps, shape changes, canvas
    /// switches), `realize_floorplan_incremental` through a warm cache must
    /// be bit-identical to a fresh `realize_floorplan` — grid occupancy,
    /// block anchors and metrics all compared (mirroring the `ScalarGrid`
    /// oracle pattern of the BitGrid PR).
    #[test]
    fn incremental_realize_matches_full_after_perturbation_sequences(
        seed in 0u64..1_000_000,
        moves in 1usize..14,
    ) {
        use analog_floorplan::circuit::generators;
        use analog_floorplan::layout::sequence_pair::{
            realize_floorplan, realize_floorplan_incremental,
        };
        use analog_floorplan::layout::{PackScratch, RealizeCache};
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let circuit = generators::random_circuit(&mut rng);
        let base_canvas = Canvas::for_circuit(&circuit);
        let alt_canvas = Canvas::new(base_canvas.width_um * 0.75, base_canvas.height_um * 1.25);
        let n = circuit.num_blocks();
        let mut positive: Vec<usize> = (0..n).collect();
        let mut negative: Vec<usize> = (0..n).collect();
        positive.shuffle(&mut rng);
        negative.shuffle(&mut rng);
        let mut shapes: Vec<Shape> = (0..n)
            .map(|_| Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0)))
            .collect();
        let mut canvas = base_canvas;

        let mut scratch = PackScratch::with_capacity(n);
        let mut cache = RealizeCache::new();
        let mut fp = Floorplan::new(canvas);
        let hpwl_min = metrics::hpwl_lower_bound(&circuit);
        let weights = metrics::RewardWeights::default();

        for _ in 0..moves {
            match rng.gen_range(0..5) {
                0 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    positive.swap(i, j);
                }
                1 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    negative.swap(i, j);
                }
                2 => {
                    let b = rng.gen_range(0..n);
                    shapes[b] = Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0));
                }
                3 => {
                    canvas = if canvas == base_canvas { alt_canvas } else { base_canvas };
                }
                _ => {} // identical episode: everything should be kept
            }

            realize_floorplan_incremental(
                &positive, &negative, &shapes, &circuit, canvas, &mut scratch, &mut fp,
                &mut cache,
            );

            let mut fresh_scratch = PackScratch::with_capacity(n);
            let mut fresh = Floorplan::new(canvas);
            realize_floorplan(
                &positive, &negative, &shapes, &circuit, canvas, &mut fresh_scratch, &mut fresh,
            );

            // Grid occupancy, block anchors and full placement records.
            prop_assert_eq!(fp.grid(), fresh.grid(), "occupancy diverged");
            prop_assert_eq!(fp.num_placed(), fresh.num_placed());
            for (a, b) in fp.placed().iter().zip(fresh.placed().iter()) {
                prop_assert_eq!(a.block, b.block, "anchor order diverged");
                prop_assert_eq!(a.cell, b.cell, "anchor cell diverged");
                prop_assert_eq!((a.grid_w, a.grid_h), (b.grid_w, b.grid_h));
                prop_assert_eq!(&a.rect, &b.rect);
                prop_assert_eq!(&a.shape, &b.shape);
            }
            prop_assert!(fp == fresh, "floorplans diverged");

            // Metrics computed from both must agree bit-for-bit.
            prop_assert_eq!(metrics::hpwl(&circuit, &fp), metrics::hpwl(&circuit, &fresh));
            prop_assert_eq!(metrics::dead_space(&fp), metrics::dead_space(&fresh));
            prop_assert_eq!(
                metrics::episode_reward(&circuit, &fp, hpwl_min, &weights),
                metrics::episode_reward(&circuit, &fresh, hpwl_min, &weights)
            );
        }
    }

    /// Differential test of the incremental FAST-SP pack: after any random
    /// perturbation sequence (s⁺/s⁻ swaps, shape changes, identical
    /// repeats), `pack_coords_cached` through a warm `PackCache` must return
    /// coordinates and enclosing dimensions bit-identical to a fresh
    /// `pack_coords` sweep — across both the linear-scan (n ≤ 32) and the
    /// Fenwick engine.
    #[test]
    fn incremental_pack_matches_full_on_perturbation_walks(
        seed in 0u64..1_000_000,
        n in 2usize..48,
        moves in 1usize..16,
    ) {
        use analog_floorplan::layout::lcs_pack::{pack_coords, pack_coords_cached, PackCache};
        use analog_floorplan::layout::PackScratch;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut shapes: Vec<Shape> = (0..n)
            .map(|_| Shape::new(rng.gen_range(0.5..25.0), rng.gen_range(0.5..25.0)))
            .collect();
        let mut positive: Vec<usize> = (0..n).collect();
        let mut negative: Vec<usize> = (0..n).collect();
        positive.shuffle(&mut rng);
        negative.shuffle(&mut rng);
        let mut scratch = PackScratch::with_capacity(n);
        let mut cache = PackCache::new();
        let (mut x, mut y) = (Vec::new(), Vec::new());
        for _ in 0..moves {
            match rng.gen_range(0..4) {
                0 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    positive.swap(i, j);
                }
                1 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    negative.swap(i, j);
                }
                2 => {
                    let b = rng.gen_range(0..n);
                    shapes[b] = Shape::new(rng.gen_range(0.5..25.0), rng.gen_range(0.5..25.0));
                }
                _ => {} // identical evaluation: both passes replay outright
            }
            let (w, h) = pack_coords_cached(
                &positive, &negative, &shapes, &mut scratch, &mut cache, &mut x, &mut y,
            );
            let mut fresh_scratch = PackScratch::with_capacity(n);
            let (mut fx, mut fy) = (Vec::new(), Vec::new());
            let (fw, fh) =
                pack_coords(&positive, &negative, &shapes, &mut fresh_scratch, &mut fx, &mut fy);
            prop_assert_eq!(&x, &fx, "x coordinates diverged");
            prop_assert_eq!(&y, &fy, "y coordinates diverged");
            prop_assert_eq!((w, h), (fw, fh), "enclosing dimensions diverged");
        }
    }

    /// Differential test of the incremental metrics engine against the
    /// full-rescan oracle: along random perturbation walks the dirty-set
    /// evaluation (per-net HPWL terms, per-constraint violation flags,
    /// deferred across penalized episodes) must report HPWL, violation
    /// count and episode reward bit-identical to `metrics_with` +
    /// `count_violations` + `episode_reward` recomputed from scratch.
    #[test]
    fn incremental_metrics_match_full_rescan_oracle(
        seed in 0u64..1_000_000,
        moves in 1usize..14,
    ) {
        use analog_floorplan::circuit::generators;
        use analog_floorplan::layout::metrics::{
            episode_reward_incremental, metrics_incremental, DirtySet, MetricsScratch,
        };
        use analog_floorplan::layout::sequence_pair::realize_floorplan_incremental;
        use analog_floorplan::layout::{PackScratch, RealizeCache};
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let circuit = generators::random_circuit(&mut rng);
        let canvas = Canvas::for_circuit(&circuit);
        let n = circuit.num_blocks();
        let mut positive: Vec<usize> = (0..n).collect();
        let mut negative: Vec<usize> = (0..n).collect();
        positive.shuffle(&mut rng);
        negative.shuffle(&mut rng);
        let mut shapes: Vec<Shape> = (0..n)
            .map(|_| Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0)))
            .collect();
        let hpwl_min = metrics::hpwl_lower_bound(&circuit);
        let weights = metrics::RewardWeights::default();

        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::new(canvas);
        let mut cache = RealizeCache::new();
        // Two scratches walked through the same dirty stream: one consumed by
        // the reward evaluation (exercising the penalty deferral), one by the
        // metric-snapshot evaluation (exercising the exact flush).
        let mut reward_scratch = MetricsScratch::new();
        let mut snapshot_scratch = MetricsScratch::new();

        for _ in 0..moves {
            match rng.gen_range(0..4) {
                0 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    positive.swap(i, j);
                }
                1 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    negative.swap(i, j);
                }
                2 => {
                    let b = rng.gen_range(0..n);
                    shapes[b] = Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0));
                }
                _ => {} // identical episode: empty dirty set
            }
            realize_floorplan_incremental(
                &positive, &negative, &shapes, &circuit, canvas, &mut scratch, &mut fp,
                &mut cache,
            );
            let dirty = || {
                if cache.last_was_full_rebuild() {
                    DirtySet::Full
                } else {
                    DirtySet::Blocks(cache.dirty_blocks())
                }
            };

            // Full-rescan oracle, fresh state every episode.
            let expected_metrics = metrics::metrics(&circuit, &fp);
            let expected_violations =
                analog_floorplan::layout::constraints::count_violations(&circuit, &fp);
            let expected_reward = metrics::episode_reward(&circuit, &fp, hpwl_min, &weights);

            let reward = episode_reward_incremental(
                &circuit, &fp, hpwl_min, &weights, &mut reward_scratch, dirty(),
            );
            prop_assert_eq!(reward, expected_reward, "episode reward diverged");

            let (m, violations) =
                metrics_incremental(&circuit, &fp, &mut snapshot_scratch, dirty());
            prop_assert_eq!(m.hpwl_um, expected_metrics.hpwl_um, "HPWL diverged");
            prop_assert_eq!(m.dead_space, expected_metrics.dead_space);
            prop_assert_eq!(m.area_um2, expected_metrics.area_um2);
            prop_assert_eq!(m.aspect_ratio, expected_metrics.aspect_ratio);
            prop_assert_eq!(violations, expected_violations, "violation count diverged");
        }
    }

    /// `realize_floorplan` (pack → scale → snap → bitboard nearest-fit) must
    /// produce placements bit-identical to the pre-refactor scalar path
    /// (same pack, scalar occupancy grid, spiral nearest-fit scan).
    #[test]
    fn realize_floorplan_matches_scalar_path(seed in 0u64..1_000_000) {
        use analog_floorplan::circuit::generators;
        use analog_floorplan::layout::sequence_pair::realize_floorplan;
        use analog_floorplan::layout::PackScratch;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let circuit = generators::random_circuit(&mut rng);
        let canvas = Canvas::for_circuit(&circuit);
        let n = circuit.num_blocks();
        let shapes: Vec<Shape> = (0..n)
            .map(|_| Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0)))
            .collect();
        let mut sp = SequencePair::identity(shapes);
        sp.positive.shuffle(&mut rng);
        sp.negative.shuffle(&mut rng);

        // Bitboard path.
        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::new(canvas);
        realize_floorplan(
            &sp.positive, &sp.negative, &sp.shapes, &circuit, canvas, &mut scratch, &mut fp,
        );

        // Scalar reference path, mirroring the pre-bitboard implementation.
        let packed = sp.pack();
        let scale_x = if packed.width > canvas.width_um {
            canvas.width_um / packed.width
        } else {
            1.0
        };
        let scale_y = if packed.height > canvas.height_um {
            canvas.height_um / packed.height
        } else {
            1.0
        };
        let scale = scale_x.min(scale_y);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            (packed.positions[a].1, packed.positions[a].0)
                .partial_cmp(&(packed.positions[b].1, packed.positions[b].0))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut grid = ScalarGrid::new();
        let mut expected: Vec<(BlockId, Cell, usize, usize)> = Vec::new();
        for &i in &order {
            let (px, py) = packed.positions[i];
            let shape = Shape::new(
                sp.shapes[i].width_um * scale,
                sp.shapes[i].height_um * scale,
            );
            let cell_x = ((px * scale) / canvas.cell_width_um()).round() as usize;
            let cell_y = ((py * scale) / canvas.cell_height_um()).round() as usize;
            let cell = Cell::new(cell_x.min(GRID_SIZE - 1), cell_y.min(GRID_SIZE - 1));
            let (gw, gh) = canvas.shape_to_cells(&shape);
            if let Some(cell) = grid.find_nearest_fit(cell, gw, gh) {
                grid.set_rect(cell, gw, gh);
                expected.push((circuit.blocks[i].id, cell, gw, gh));
            }
        }
        let got: Vec<(BlockId, Cell, usize, usize)> = fp
            .placed()
            .iter()
            .map(|p| (p.block, p.cell, p.grid_w, p.grid_h))
            .collect();
        prop_assert_eq!(got, expected, "realized placements diverge (seed {})", seed);
    }
}

/// A deterministic `n`-block chain circuit used by the large-n differential
/// walks: randomized block areas, a chain net per adjacent pair and a
/// vertical-symmetry constraint per adjacent pair — so any `n > 64` pushes
/// the per-block *and* per-constraint incremental masks past one word.
fn large_circuit(n: usize, seed: u64) -> analog_floorplan::circuit::Circuit {
    use analog_floorplan::circuit::{Circuit, NetClass};
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..n).map(|i| format!("B{i}")).collect();
    let mut builder = Circuit::builder(format!("large-{n}"));
    for name in &names {
        builder = builder.block(name, BlockKind::CurrentMirror, rng.gen_range(4.0..40.0), 3);
    }
    for w in names.windows(2) {
        builder = builder.net(
            &format!("n_{}_{}", &w[0], &w[1]),
            &[(w[0].as_str(), "d"), (w[1].as_str(), "s")],
            NetClass::Signal,
        );
    }
    for w in names.windows(2) {
        builder = builder.symmetry_v(&[(w[0].as_str(), w[1].as_str())]);
    }
    builder.build().expect("large circuit is valid")
}

proptest! {
    // 200+ random cases each: the acceptance bar of the multi-word engines —
    // the same scalar / full-rescan differentials as the blocks above, but on
    // grids wider than one 64-bit word and circuits past the historical
    // 64-block / 64-constraint bitmask ceiling. Run by name in scripts/ci.sh
    // under the default and both feature-gated oracle configurations.
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Word-spanning occupancy queries versus the scalar oracle: on a grid
    /// with 65–96 columns (2 words per row), `fits`, the free-anchor map and
    /// the banded nearest-fit search must agree with the scalar grid and the
    /// historical spiral scan on every cell — anchors probed across both
    /// word seams.
    #[test]
    fn multiword_grid_fits_anchors_and_nearest_fit_match_scalar(
        side in 65usize..97,
        placements in prop::collection::vec(
            ((0usize..96), (0usize..96), (1.0f64..18.0), (1.0f64..18.0)), 1..24),
        footprint in ((1usize..20), (1usize..8)),
        start in ((0usize..96), (0usize..96)),
    ) {
        use analog_floorplan::layout::sequence_pair::find_nearest_fit;
        let canvas = Canvas::new(side as f64, side as f64);
        let mut fp = Floorplan::with_grid_side(canvas, side);
        let mut scalar = ScalarGrid::with_side(side);
        for (i, (x, y, w, h)) in placements.into_iter().enumerate() {
            if x >= side || y >= side {
                continue;
            }
            if fp.place(BlockId(i), 0, Shape::new(w, h), Cell::new(x, y)).is_ok() {
                let p = fp.placed().last().unwrap();
                scalar.set_rect(p.cell, p.grid_w, p.grid_h);
            }
        }
        let (gw, gh) = footprint;
        let anchors = fp.grid().free_anchors(gw, gh);
        for y in 0..side {
            for x in 0..side {
                let cell = Cell::new(x, y);
                let expected = scalar.fits(cell, gw, gh);
                prop_assert_eq!(fp.fits(cell, gw, gh), expected,
                    "fits diverges at ({}, {}) for {}x{} on side {}", x, y, gw, gh, side);
                prop_assert_eq!(anchors.get(x, y), expected,
                    "anchor bit diverges at ({}, {}) for {}x{} on side {}", x, y, gw, gh, side);
            }
        }
        let start = Cell::new(start.0.min(side - 1), start.1.min(side - 1));
        prop_assert_eq!(
            find_nearest_fit(&fp, start, gw, gh),
            scalar.find_nearest_fit(start, gw, gh),
            "nearest fit diverges from spiral scan at start ({}, {})", start.x, start.y
        );
    }

    /// The incremental realization engine past the 64-block ceiling: along
    /// random perturbation walks of a 65–200 block circuit on a 96-cell
    /// grid, `realize_floorplan_incremental` through a warm cache must stay
    /// bit-identical to a fresh `realize_floorplan` — multi-word occupancy,
    /// anchors, placement records and metrics all compared.
    #[test]
    fn incremental_realize_matches_full_beyond_64_blocks(
        n in 65usize..201,
        seed in 0u64..1_000_000,
        moves in 1usize..5,
    ) {
        use analog_floorplan::layout::sequence_pair::{
            realize_floorplan, realize_floorplan_incremental,
        };
        use analog_floorplan::layout::{PackScratch, RealizeCache};
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        const SIDE: usize = 96;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let circuit = large_circuit(n, seed);
        let base_canvas = Canvas::for_circuit(&circuit);
        let alt_canvas = Canvas::new(base_canvas.width_um * 0.75, base_canvas.height_um * 1.25);
        let mut positive: Vec<usize> = (0..n).collect();
        let mut negative: Vec<usize> = (0..n).collect();
        positive.shuffle(&mut rng);
        negative.shuffle(&mut rng);
        let mut shapes: Vec<Shape> = (0..n)
            .map(|_| Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0)))
            .collect();
        let mut canvas = base_canvas;

        let mut scratch = PackScratch::with_capacity(n);
        let mut cache = RealizeCache::new();
        let mut fp = Floorplan::with_grid_side(canvas, SIDE);

        for _ in 0..moves {
            match rng.gen_range(0..5) {
                0 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    positive.swap(i, j);
                }
                1 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    negative.swap(i, j);
                }
                2 => {
                    let b = rng.gen_range(0..n);
                    shapes[b] = Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0));
                }
                3 => {
                    canvas = if canvas == base_canvas { alt_canvas } else { base_canvas };
                }
                _ => {} // identical episode: everything should be kept
            }

            realize_floorplan_incremental(
                &positive, &negative, &shapes, &circuit, canvas, &mut scratch, &mut fp,
                &mut cache,
            );

            let mut fresh_scratch = PackScratch::with_capacity(n);
            let mut fresh = Floorplan::with_grid_side(canvas, SIDE);
            realize_floorplan(
                &positive, &negative, &shapes, &circuit, canvas, &mut fresh_scratch, &mut fresh,
            );

            prop_assert_eq!(fp.grid(), fresh.grid(), "multi-word occupancy diverged");
            prop_assert_eq!(fp.num_placed(), fresh.num_placed());
            for (a, b) in fp.placed().iter().zip(fresh.placed().iter()) {
                prop_assert_eq!(a.block, b.block, "anchor order diverged");
                prop_assert_eq!(a.cell, b.cell, "anchor cell diverged");
                prop_assert_eq!((a.grid_w, a.grid_h), (b.grid_w, b.grid_h));
                prop_assert_eq!(&a.rect, &b.rect);
            }
            prop_assert!(fp == fresh, "floorplans diverged");
            prop_assert_eq!(metrics::hpwl(&circuit, &fp), metrics::hpwl(&circuit, &fresh));
        }
    }

    /// The incremental metrics engine past the 64-block / 64-constraint
    /// ceiling: along the same perturbation walks, the dirty-set evaluation
    /// must report HPWL, violation count and episode reward bit-identical to
    /// the full rescan — with the spilled masks never tripping a fallback
    /// (`fallback_rescans` stays 0 at every n).
    #[test]
    fn incremental_metrics_match_full_beyond_64_blocks(
        n in 65usize..201,
        seed in 0u64..1_000_000,
        moves in 1usize..5,
    ) {
        use analog_floorplan::layout::metrics::{
            episode_reward_incremental, metrics_incremental, DirtySet, MetricsScratch,
        };
        use analog_floorplan::layout::sequence_pair::realize_floorplan_incremental;
        use analog_floorplan::layout::{PackScratch, RealizeCache};
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        const SIDE: usize = 96;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let circuit = large_circuit(n, seed);
        prop_assert!(circuit.constraints.len() > 64, "constraint masks must spill");
        let canvas = Canvas::for_circuit(&circuit);
        let mut positive: Vec<usize> = (0..n).collect();
        let mut negative: Vec<usize> = (0..n).collect();
        positive.shuffle(&mut rng);
        negative.shuffle(&mut rng);
        let mut shapes: Vec<Shape> = (0..n)
            .map(|_| Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0)))
            .collect();
        let hpwl_min = metrics::hpwl_lower_bound(&circuit);
        let weights = metrics::RewardWeights::default();

        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::with_grid_side(canvas, SIDE);
        let mut cache = RealizeCache::new();
        let mut reward_scratch = MetricsScratch::new();
        let mut snapshot_scratch = MetricsScratch::new();

        for _ in 0..moves {
            match rng.gen_range(0..4) {
                0 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    positive.swap(i, j);
                }
                1 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    negative.swap(i, j);
                }
                2 => {
                    let b = rng.gen_range(0..n);
                    shapes[b] = Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0));
                }
                _ => {} // identical episode: empty dirty set
            }
            realize_floorplan_incremental(
                &positive, &negative, &shapes, &circuit, canvas, &mut scratch, &mut fp,
                &mut cache,
            );
            let dirty = || {
                if cache.last_was_full_rebuild() {
                    DirtySet::Full
                } else {
                    DirtySet::Blocks(cache.dirty_blocks())
                }
            };

            let expected_metrics = metrics::metrics(&circuit, &fp);
            let expected_violations =
                analog_floorplan::layout::constraints::count_violations(&circuit, &fp);
            let expected_reward = metrics::episode_reward(&circuit, &fp, hpwl_min, &weights);

            let reward = episode_reward_incremental(
                &circuit, &fp, hpwl_min, &weights, &mut reward_scratch, dirty(),
            );
            prop_assert_eq!(reward, expected_reward, "episode reward diverged at n {}", n);

            let (m, violations) =
                metrics_incremental(&circuit, &fp, &mut snapshot_scratch, dirty());
            prop_assert_eq!(m.hpwl_um, expected_metrics.hpwl_um, "HPWL diverged at n {}", n);
            prop_assert_eq!(m.dead_space, expected_metrics.dead_space);
            prop_assert_eq!(m.area_um2, expected_metrics.area_um2);
            prop_assert_eq!(m.aspect_ratio, expected_metrics.aspect_ratio);
            prop_assert_eq!(violations, expected_violations, "violation count diverged");
        }
        prop_assert_eq!(reward_scratch.fallback_rescans, 0, "reward path tripped a fallback");
        prop_assert_eq!(snapshot_scratch.fallback_rescans, 0, "metrics path tripped a fallback");
    }
}

proptest! {
    // Differential safety net of the parallel evaluation engine (layer 5,
    // see ARCHITECTURE.md): run by name in scripts/ci.sh under the default
    // and both feature-gated oracle configurations.
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// `EvalPool::evaluate` must return, for random populations and any
    /// worker count, exactly the costs the serial `cost_cached` loop
    /// produces — in candidate order, bit-identical `f64`s. Two generations
    /// are scored per case so the second batch runs on warm per-worker
    /// caches (the incremental engines diffing against whichever candidate
    /// that worker saw last — the steady state GA/PSO live in).
    #[test]
    fn eval_pool_matches_serial_cost_cached(
        seed in 0u64..1_000_000,
        population in 2usize..24,
        workers in 1usize..5,
    ) {
        use analog_floorplan::circuit::generators;
        use analog_floorplan::metaheuristics::{Candidate, CostCache, EvalPool, Problem};
        use rand::SeedableRng;
        let circuit = match seed % 3 {
            0 => generators::ota5(),
            1 => generators::ota8(),
            _ => generators::bias9(),
        };
        let problem = Problem::new(&circuit);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut generation: Vec<Candidate> = (0..population)
            .map(|_| Candidate::random(problem.num_blocks(), &mut rng))
            .collect();

        let mut pool = EvalPool::new(&problem, workers);
        let mut serial_cache = CostCache::new(&problem);
        for round in 0..2 {
            let batch = pool.evaluate(&problem, &generation);
            let serial: Vec<f64> = generation
                .iter()
                .map(|c| problem.cost_cached(c, &mut serial_cache))
                .collect();
            prop_assert_eq!(
                &batch, &serial,
                "pool diverged from the serial loop (round {}, {} workers)",
                round, workers
            );
            for (candidate, &cost) in generation.iter().zip(&batch) {
                prop_assert_eq!(cost, problem.cost(candidate), "cost diverged from Problem::cost");
            }
            // GA-style drift into the next generation: perturb every member.
            for candidate in &mut generation {
                let _ = candidate.perturb(&mut rng);
            }
        }

        // The pool's runtime oracle toggles: flip every worker cache to the
        // full-rebuild realization and full-rescan metrics paths and
        // re-score — still bit-identical to the uncached cost.
        pool.set_incremental(false);
        pool.set_incremental_metrics(false);
        let oracle = pool.evaluate(&problem, &generation);
        for (candidate, &cost) in generation.iter().zip(&oracle) {
            prop_assert_eq!(cost, problem.cost(candidate), "oracle-path pool cost diverged");
        }
    }

    /// An N-chain `multistart_sa` run over the persistent worker pool must
    /// be, chain for chain, bit-identical to N sequential
    /// `simulated_annealing_with_cache` runs with the derived chain seeds on
    /// fresh caches — and pick the same winner — for any chain count, any
    /// worker count, and restart schedules on or off. This is the
    /// whole-trajectory analogue of `eval_pool_matches_serial_cost_cached`:
    /// a worker's cache is warm with whatever chain it served last, so any
    /// cache-state leakage into costs would split the trajectories.
    #[test]
    fn multistart_sa_matches_serial_replay(
        seed in 0u64..1_000_000,
        chains in 1usize..5,
        workers in 1usize..5,
        restarts in 0usize..3,
    ) {
        use analog_floorplan::circuit::generators;
        use analog_floorplan::metaheuristics::{
            chain_seed, multistart_sa, select_winner, simulated_annealing_with_cache,
            CostCache, MultistartSaConfig, Problem, SaConfig,
        };
        let circuit = match seed % 3 {
            0 => generators::ota5(),
            1 => generators::ota8(),
            _ => generators::bias9(),
        };
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 120,
                seed,
                locality_bias: 0.5,
                restarts,
                ..SaConfig::small()
            },
            chains,
            workers,
        };
        let pooled = multistart_sa(&circuit, &cfg);
        prop_assert_eq!(pooled.chains.len(), chains);

        let problem = Problem::new(&circuit);
        let mut serial = Vec::with_capacity(chains);
        for chain in 0..chains {
            let chain_cfg = SaConfig {
                seed: chain_seed(cfg.base.seed, chain),
                ..cfg.base.clone()
            };
            let mut cache = CostCache::new(&problem);
            serial.push(simulated_annealing_with_cache(&problem, &chain_cfg, None, &mut cache));
        }
        for (chain, (outcome, s)) in pooled.chains.iter().zip(&serial).enumerate() {
            let p = outcome
                .result()
                .unwrap_or_else(|| panic!("uncontrolled chain {chain} did not finish"));
            prop_assert_eq!(
                p.reward, s.reward,
                "chain {} reward diverged from serial replay ({} workers)",
                chain, workers
            );
            prop_assert_eq!(p.evaluations, s.evaluations, "chain {} budget diverged", chain);
            prop_assert_eq!(
                &p.floorplan, &s.floorplan,
                "chain {} floorplan diverged ({} workers)",
                chain, workers
            );
        }
        prop_assert_eq!(
            pooled.winner,
            Some(select_winner(&circuit, &serial)),
            "winner diverged from the serial reduction"
        );
    }

    /// An SA run under a `RunControl` whose deadline and budget can never
    /// fire must replay the uncontrolled run bit for bit, at any polling
    /// stride: the control layer's polls draw nothing from the RNG, so PR 6
    /// trajectories are preserved exactly. (An interrupted run is allowed to
    /// — and does — stop early; this pins the *uninterrupted* contract.)
    #[test]
    fn sa_with_generous_deadline_replays_the_unbounded_run(
        seed in 0u64..1_000_000,
        stride in 1u64..200,
        restarts in 0usize..3,
    ) {
        use std::time::Duration;
        use analog_floorplan::circuit::generators;
        use analog_floorplan::metaheuristics::{
            simulated_annealing_controlled, simulated_annealing_with_cache, CostCache, Problem,
            RunControl, SaConfig, StopReason,
        };
        let circuit = match seed % 3 {
            0 => generators::ota5(),
            1 => generators::ota8(),
            _ => generators::bias9(),
        };
        let problem = Problem::new(&circuit);
        let cfg = SaConfig {
            iterations: 150,
            seed,
            restarts,
            ..SaConfig::small()
        };
        let mut cache = CostCache::new(&problem);
        let plain = simulated_annealing_with_cache(&problem, &cfg, None, &mut cache);
        let control = RunControl::unbounded()
            .with_deadline(Duration::from_secs(3600))
            .with_budget(u64::MAX)
            .with_stride(stride);
        let mut cache = CostCache::new(&problem);
        let controlled = simulated_annealing_controlled(&problem, &cfg, None, &mut cache, &control);
        prop_assert_eq!(controlled.stop, StopReason::Completed);
        prop_assert_eq!(controlled.reward, plain.reward, "reward diverged (stride {})", stride);
        prop_assert_eq!(controlled.evaluations, plain.evaluations);
        prop_assert_eq!(&controlled.floorplan, &plain.floorplan);
    }
}

/// Robustness proptests of the chain-race failure domains, driven by the
/// deterministic fault-injection harness (`--features fault-inject`; run by
/// name in scripts/ci.sh).
#[cfg(feature = "fault-inject")]
mod fault_injection {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// `multistart_sa_injected` under a seeded `FaultPlan`: the set of
        /// panicked chains is exactly the planned set at every worker count,
        /// surviving chains are bit-identical to serial replays with the
        /// derived chain seeds, and the winner reduces deterministically
        /// over the survivors — `None` only when every chain panicked.
        /// Stalls perturb scheduling only; results must not move.
        #[test]
        fn multistart_survivors_winner_is_deterministic_under_injected_faults(
            seed in 0u64..1_000_000,
            chains in 1usize..6,
            panic_percent in 0u8..70,
            stall_percent in 0u8..25,
        ) {
            use analog_floorplan::circuit::generators;
            use analog_floorplan::metaheuristics::{
                chain_seed, multistart_sa_injected, select_surviving_winner,
                simulated_annealing_with_cache, ChainOutcome, CostCache, MultistartSaConfig,
                Problem, RunControl, SaConfig,
            };
            use analog_floorplan::par::fault::FaultPlan;
            let circuit = match seed % 3 {
                0 => generators::ota5(),
                1 => generators::ota8(),
                _ => generators::bias9(),
            };
            let problem = Problem::new(&circuit);
            let cfg = MultistartSaConfig {
                base: SaConfig {
                    iterations: 60,
                    seed,
                    ..SaConfig::small()
                },
                chains,
                workers: 1,
            };
            let plan = FaultPlan::new(seed, panic_percent, stall_percent);

            let reference = multistart_sa_injected(
                &problem,
                &cfg,
                &RunControl::unbounded(),
                &plan,
            );
            prop_assert_eq!(reference.chains.len(), chains);
            for (chain, outcome) in reference.chains.iter().enumerate() {
                if plan.panics(chain as u64) {
                    let message = outcome.panic_message().unwrap_or("");
                    prop_assert!(
                        outcome.is_panicked(),
                        "chain {} was planned to panic but finished",
                        chain
                    );
                    prop_assert!(
                        message.contains("injected fault"),
                        "chain {} lost its panic payload: {:?}",
                        chain, message
                    );
                } else {
                    // A survivor is exactly the serial replay: the panic of a
                    // neighbouring chain must not leak into its trajectory
                    // (its worker's cache was rebuilt from scratch).
                    let result = outcome
                        .result()
                        .unwrap_or_else(|| panic!("chain {chain} neither panicked nor finished"));
                    let chain_cfg = SaConfig {
                        seed: chain_seed(cfg.base.seed, chain),
                        ..cfg.base.clone()
                    };
                    let mut cache = CostCache::new(&problem);
                    let replay =
                        simulated_annealing_with_cache(&problem, &chain_cfg, None, &mut cache);
                    prop_assert_eq!(result.reward, replay.reward, "chain {} diverged", chain);
                    prop_assert_eq!(&result.floorplan, &replay.floorplan);
                }
            }
            prop_assert_eq!(
                reference.winner,
                select_surviving_winner(&circuit, &reference.chains),
                "winner is not the deterministic survivor reduction"
            );
            let any_survivor = reference
                .chains
                .iter()
                .any(|outcome| matches!(outcome, ChainOutcome::Finished(_)));
            prop_assert_eq!(reference.winner.is_some(), any_survivor);

            // The panicked set is the plan's choice, never the scheduler's:
            // the whole outcome vector (and the winner) is identical at
            // every worker count, and each pooled run leaves its pool
            // reusable (the run itself would deadlock or panic otherwise).
            for workers in [2usize, 4] {
                let pooled = multistart_sa_injected(
                    &problem,
                    &MultistartSaConfig { workers, ..cfg.clone() },
                    &RunControl::unbounded(),
                    &plan,
                );
                prop_assert_eq!(pooled.winner, reference.winner, "{} workers", workers);
                for (chain, (p, r)) in
                    pooled.chains.iter().zip(&reference.chains).enumerate()
                {
                    prop_assert_eq!(
                        p.is_panicked(),
                        r.is_panicked(),
                        "chain {} fault set moved at {} workers",
                        chain, workers
                    );
                    match (p.result(), r.result()) {
                        (Some(a), Some(b)) => {
                            prop_assert_eq!(a.reward, b.reward, "chain {} diverged", chain);
                            prop_assert_eq!(&a.floorplan, &b.floorplan);
                        }
                        (None, None) => {}
                        _ => panic!("chain {chain} outcome class moved at {workers} workers"),
                    }
                }
            }
        }
    }
}

proptest! {
    // Contract proptests of the serve layer (fingerprint + result cache +
    // job engine): run by name in scripts/ci.sh under the default and both
    // feature-gated oracle configurations, because memoized results are only
    // safe to return if the solvers are bit-identical under every oracle.
    // Fewer cases than the layer-5 blocks above: each case runs real solves.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fingerprint injectivity and canonicalization over the generator
    /// families: specs that differ in circuit family, block sizing, solver
    /// family, solver knobs, or seed must get distinct fingerprints, while
    /// renaming every block/net/circuit and shuffling every unordered
    /// collection (nets, pins, constraint internals) must not move the
    /// fingerprint — and a sizing jitter must preserve the topology
    /// fingerprint that keys warm starts.
    #[test]
    fn serve_fingerprints_are_injective_and_canonical(
        seed in 0u64..1_000_000,
        jitter in 0.01f64..0.25,
    ) {
        use analog_floorplan::circuit::generators;
        use analog_floorplan::circuit::Constraint;
        use analog_floorplan::metaheuristics::{Baseline, GaConfig, SaConfig};
        use analog_floorplan::serve::JobSpec;

        let families = generators::dataset_families();
        let mut specs: Vec<JobSpec> = Vec::new();
        for base in &families {
            // Same circuit under different seeds, solver families, and knobs.
            specs.push(JobSpec::new(base.clone(), Baseline::Sa(SaConfig::small()), seed));
            specs.push(JobSpec::new(base.clone(), Baseline::Sa(SaConfig::small()), seed ^ 1));
            specs.push(JobSpec::new(base.clone(), Baseline::Ga(GaConfig::small()), seed));
            let retuned = SaConfig { cooling: 0.77, ..SaConfig::small() };
            specs.push(JobSpec::new(base.clone(), Baseline::Sa(retuned), seed));
            // Same topology with jittered sizing.
            let mut resized = base.clone();
            for block in &mut resized.blocks {
                block.area_um2 *= 1.0 + jitter;
            }
            specs.push(JobSpec::new(resized, Baseline::Sa(SaConfig::small()), seed));
        }
        let fps: Vec<_> = specs.iter().map(|s| s.fingerprint()).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                prop_assert!(fps[i] != fps[j], "specs {} and {} collided", i, j);
            }
        }

        // The jittered variant keys the same warm-start topology as its base.
        for pair in specs.chunks(5) {
            prop_assert_eq!(
                pair[0].topology_fingerprint(),
                pair[4].topology_fingerprint(),
                "sizing jitter moved the topology fingerprint"
            );
        }

        // Canonicalization: renaming everything and reversing every
        // unordered collection must not move either fingerprint.
        for spec in &specs {
            let mut scrambled = spec.clone();
            scrambled.circuit.name = format!("{}-renamed", scrambled.circuit.name);
            for block in &mut scrambled.circuit.blocks {
                block.name = format!("b{}", block.id.index());
            }
            scrambled.circuit.nets.reverse();
            for net in &mut scrambled.circuit.nets {
                net.name = format!("n{}", net.id.index());
                net.pins.reverse();
            }
            let mut constraints: Vec<Constraint> =
                scrambled.circuit.constraints.iter().cloned().collect();
            constraints.reverse();
            for constraint in &mut constraints {
                if let Constraint::Symmetry(group) = constraint {
                    group.pairs.reverse();
                    for p in &mut group.pairs {
                        *p = (p.1, p.0);
                    }
                    group.self_symmetric.reverse();
                }
            }
            scrambled.circuit.constraints = constraints.into_iter().collect();
            prop_assert_eq!(spec.fingerprint(), scrambled.fingerprint());
            prop_assert_eq!(spec.topology_fingerprint(), scrambled.topology_fingerprint());
        }
    }

    /// The memoization contract end to end: at every worker count, a cold
    /// solve through the engine is bit-identical to calling the baseline
    /// directly, and an exact repeat submission is answered from the cache
    /// with the very same bits — hit observable in the cache counters.
    #[test]
    fn serve_cache_hit_replays_the_cold_solve_bit_for_bit(
        seed in 0u64..1_000_000,
    ) {
        use analog_floorplan::circuit::generators;
        use analog_floorplan::metaheuristics::{
            Baseline, GaConfig, RunControl, SaConfig, StopReason,
        };
        use analog_floorplan::serve::{JobEngine, JobRequest, JobSpec, ServeConfig};

        let circuit = match seed % 3 {
            0 => generators::ota5(),
            1 => generators::ota8(),
            _ => generators::bias9(),
        };
        let solver = if seed % 2 == 0 {
            Baseline::Sa(SaConfig { iterations: 90, ..SaConfig::small() })
        } else {
            Baseline::Ga(GaConfig { generations: 4, ..GaConfig::small() })
        };
        let spec = JobSpec::new(circuit, solver, seed);
        let reference = spec
            .solver
            .run_controlled_seeded(&spec.circuit, spec.seed, &RunControl::unbounded(), None)
            .0;
        prop_assert_eq!(reference.stop, StopReason::Completed);

        for workers in [1usize, 2, 4] {
            let engine = JobEngine::new(&ServeConfig {
                workers,
                ..ServeConfig::default()
            });
            let cold = engine.submit(JobRequest::new(spec.clone()));
            let hot = engine.submit(JobRequest::new(spec.clone()));
            engine.run_pending();

            let cold = engine.outcome(cold).unwrap();
            let hot = engine.outcome(hot).unwrap();
            prop_assert!(!cold.cache_hit, "{} workers: first solve hit the cache", workers);
            prop_assert!(hot.cache_hit, "{} workers: repeat missed the cache", workers);
            for (label, r) in [("cold", &cold.result), ("hit", &hot.result)] {
                prop_assert_eq!(
                    r.reward.to_bits(),
                    reference.reward.to_bits(),
                    "{} workers: {} reward diverged from the direct run",
                    workers, label
                );
                prop_assert_eq!(r.evaluations, reference.evaluations, "{}", label);
                prop_assert_eq!(&r.floorplan, &reference.floorplan, "{}", label);
            }
            let stats = engine.cache_stats();
            prop_assert_eq!(stats.hits, 1, "{} workers", workers);
            prop_assert_eq!(stats.insertions, 1, "{} workers", workers);
        }
    }
}

proptest! {
    // Persistence round-trip contract: run by name in scripts/ci.sh under
    // the default and both feature-gated oracle configurations, because a
    // restored cache is only safe if the hits it serves are bit-identical
    // to what the *current* solver stack would produce. Many cases, tiny
    // solves: the surface under test is the snapshot codec, not the solver.
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Random job mixes → `persist()` → fresh-engine `restore()` → repeats
    /// are cache hits bit-identical to the pre-restart outcomes, at a
    /// per-case worker count drawn from {1, 2, 4}; corrupted, truncated and
    /// version-bumped snapshot bytes load as typed errors and fall back to
    /// cold — never a panic, and never partially restored state.
    #[test]
    fn serve_persist_round_trip_restores_bit_identical_hits(
        seed in 0u64..1_000_000,
    ) {
        use analog_floorplan::circuit::generators;
        use analog_floorplan::metaheuristics::{Baseline, SaConfig, StopReason};
        use analog_floorplan::serve::{
            CacheHandle, JobEngine, JobRequest, JobSpec, PersistError, ServeConfig,
        };
        use analog_floorplan::par::PoolHandle;

        let workers = [1usize, 2, 4][(seed % 3) as usize];
        let solver = Baseline::Sa(SaConfig { iterations: 30, ..SaConfig::small() });
        let specs: Vec<JobSpec> = (0..2 + (seed % 2))
            .map(|i| {
                let circuit = if (seed + i) % 2 == 0 {
                    generators::ota3()
                } else {
                    generators::ota5()
                };
                JobSpec::new(circuit, solver.clone(), seed ^ (i << 8))
            })
            .collect();

        // Solve the mix cold, then snapshot the populated cache.
        let config = ServeConfig { workers, ..ServeConfig::default() };
        let engine = JobEngine::new(&config);
        let ids: Vec<_> = specs
            .iter()
            .map(|s| engine.submit(JobRequest::new(s.clone())))
            .collect();
        engine.run_pending();
        let originals: Vec<_> = ids
            .iter()
            .map(|id| engine.outcome(*id).expect("cold job done"))
            .collect();
        for outcome in &originals {
            prop_assert_eq!(outcome.result.stop, StopReason::Completed);
        }
        let bytes = engine.cache().snapshot_bytes();

        // Restore into a fresh engine: every repeat is a hit, bit-identical
        // to its pre-restart outcome.
        let restored_cache = CacheHandle::new(64);
        prop_assert_eq!(
            restored_cache.restore_bytes(&bytes).expect("restore"),
            specs.len()
        );
        let fresh = JobEngine::with_cache(&config, PoolHandle::new(workers), restored_cache);
        let repeat_ids: Vec<_> = specs
            .iter()
            .map(|s| fresh.submit(JobRequest::new(s.clone())))
            .collect();
        fresh.run_pending();
        for (original, id) in originals.iter().zip(repeat_ids) {
            let repeat = fresh.outcome(id).expect("repeat done");
            prop_assert!(repeat.cache_hit, "restored repeat missed the cache");
            prop_assert_eq!(
                repeat.result.reward.to_bits(),
                original.result.reward.to_bits()
            );
            prop_assert_eq!(&repeat.result.floorplan, &original.result.floorplan);
            prop_assert_eq!(repeat.result.evaluations, original.result.evaluations);
        }
        let stats = fresh.cache_stats();
        prop_assert_eq!(stats.hits, specs.len() as u64);
        prop_assert_eq!(stats.misses, 0);

        // Damaged bytes: typed rejection, cold fallback, never a panic —
        // and the cold engine still solves the job for real.
        let damaged = match seed % 4 {
            0 => {
                let mut b = bytes.clone();
                b.truncate((seed as usize) % bytes.len());
                b
            }
            1 => {
                let mut b = bytes.clone();
                let mid = 12 + (seed as usize) % (bytes.len() - 12);
                b[mid] ^= 0x40;
                b
            }
            2 => {
                let mut b = bytes.clone();
                let bumped = analog_floorplan::serve::persist::FORMAT_VERSION + 1;
                b[4..8].copy_from_slice(&bumped.to_le_bytes());
                b
            }
            _ => {
                let mut b = bytes.clone();
                let bumped = analog_floorplan::serve::fingerprint::TAG_LAYOUT_VERSION + 1;
                b[8..12].copy_from_slice(&bumped.to_le_bytes());
                b
            }
        };
        let cold_cache = CacheHandle::new(64);
        let error = cold_cache.restore_bytes(&damaged);
        match seed % 4 {
            2 => prop_assert!(matches!(
                error,
                Err(PersistError::UnsupportedFormatVersion { .. })
            )),
            3 => prop_assert!(matches!(error, Err(PersistError::TagLayoutMismatch { .. }))),
            _ => prop_assert!(error.is_err(), "damaged bytes restored cleanly"),
        }
        prop_assert!(cold_cache.is_empty(), "partial state escaped a failed restore");
        let cold = JobEngine::with_cache(&config, PoolHandle::new(workers), cold_cache);
        let id = cold.submit(JobRequest::new(specs[0].clone()));
        cold.run_pending();
        let outcome = cold.outcome(id).expect("cold fallback still solves");
        prop_assert!(!outcome.cache_hit);
        prop_assert_eq!(
            outcome.result.reward.to_bits(),
            originals[0].result.reward.to_bits()
        );
    }
}

proptest! {
    // Daemon contract: live admission against a running drain loop, with
    // outcomes bit-identical to direct cold solves and fully reconciled
    // counters. Few cases — each spins up a daemon and real threads.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Jobs streamed into a live daemon (including an in-flight duplicate)
    /// all resolve, match their direct cold solves bit for bit, and the
    /// shared-cache counters reconcile: one counted lookup per submission.
    #[test]
    fn serve_daemon_admits_while_draining_and_matches_cold_solves(
        seed in 0u64..1_000_000,
    ) {
        use analog_floorplan::metaheuristics::{Baseline, RunControl, SaConfig, StopReason};
        use analog_floorplan::circuit::generators;
        use analog_floorplan::serve::{JobRequest, JobSpec, ServeConfig, ServeDaemon};

        let workers = [1usize, 2, 4][(seed % 3) as usize];
        let solver = Baseline::Sa(SaConfig { iterations: 60, ..SaConfig::small() });
        let specs = [
            JobSpec::new(generators::ota3(), solver.clone(), seed),
            JobSpec::new(generators::ota5(), solver.clone(), seed ^ 7),
            JobSpec::new(generators::ota3(), solver.clone(), seed ^ 13),
        ];

        // Warm starts off: they seed a solve from whatever same-topology
        // entry happens to be cached when the drain thread picks the job up,
        // which is exactly the history-dependence this bit-identity check
        // must not race against.
        let daemon = ServeDaemon::spawn(&ServeConfig {
            workers,
            warm_start: false,
            ..ServeConfig::default()
        });
        // Stream the jobs in one at a time so later admissions land while
        // earlier batches drain, plus a duplicate of the first spec.
        let mut ids = Vec::new();
        for spec in &specs {
            ids.push(daemon.submit(JobRequest::new(spec.clone())).expect("admit"));
        }
        ids.push(daemon.submit(JobRequest::new(specs[0].clone())).expect("admit dup"));
        daemon.wait_idle();

        for (i, id) in ids.iter().enumerate() {
            let spec = if i < specs.len() { &specs[i] } else { &specs[0] };
            let outcome = daemon.outcome(*id).expect("job resolved");
            let direct = spec
                .solver
                .run_controlled_seeded(&spec.circuit, spec.seed, &RunControl::unbounded(), None)
                .0;
            prop_assert_eq!(outcome.result.stop, StopReason::Completed);
            prop_assert_eq!(
                outcome.result.reward.to_bits(),
                direct.reward.to_bits(),
                "{} workers: daemon solve diverged from direct run",
                workers
            );
            prop_assert_eq!(&outcome.result.floorplan, &direct.floorplan);
        }
        // The duplicate is a hit, not a second solve.
        let dup = daemon.outcome(*ids.last().unwrap()).expect("dup resolved");
        prop_assert!(dup.cache_hit);

        let stats = daemon.engine().cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, ids.len() as u64);
        prop_assert_eq!(stats.insertions, specs.len() as u64);

        let report = daemon.shutdown();
        prop_assert_eq!(report.resolved, ids.len());
        prop_assert_eq!(report.completed, ids.len());
        prop_assert_eq!(report.cancelled, 0);
        prop_assert_eq!(report.failed, 0);
    }
}

/// Concurrency stress: N submitter threads race a live drain loop at every
/// worker count. No job may be lost or double-run, every result must be
/// bit-identical to its cold solve, and the shared-cache counters must
/// reconcile exactly — `hits + misses == submissions`, one insertion per
/// distinct fingerprint.
#[test]
fn serve_daemon_stress_submitters_race_drain() {
    use analog_floorplan::circuit::generators;
    use analog_floorplan::metaheuristics::{Baseline, RunControl, SaConfig, StopReason};
    use analog_floorplan::serve::{JobId, JobRequest, JobSpec, ServeConfig, ServeDaemon};

    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 8;
    let solver = Baseline::Sa(SaConfig {
        iterations: 60,
        ..SaConfig::small()
    });
    let specs: Vec<JobSpec> = (0..6u64)
        .map(|i| {
            let circuit = if i % 2 == 0 {
                generators::ota3()
            } else {
                generators::ota5()
            };
            JobSpec::new(circuit, solver.clone(), 100 + i)
        })
        .collect();
    let direct: Vec<_> = specs
        .iter()
        .map(|spec| {
            spec.solver
                .run_controlled_seeded(&spec.circuit, spec.seed, &RunControl::unbounded(), None)
                .0
        })
        .collect();

    for workers in [1usize, 2, 4] {
        // Warm starts off for the same reason as the daemon proptest above:
        // bit-identity to a fixed cold solve requires solves that do not
        // depend on which same-topology entries were cached first.
        let daemon = ServeDaemon::spawn(&ServeConfig {
            workers,
            warm_start: false,
            ..ServeConfig::default()
        });
        // (spec index, job id) pairs from every submitter thread.
        let submitted: Vec<(usize, JobId)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SUBMITTERS)
                .map(|thread| {
                    let daemon = &daemon;
                    let specs = &specs;
                    scope.spawn(move || {
                        (0..PER_THREAD)
                            .map(|i| {
                                let which = (thread + i * SUBMITTERS) % specs.len();
                                let id = daemon
                                    .submit(JobRequest::new(specs[which].clone()))
                                    .expect("unbounded admission");
                                (which, id)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("submitter thread"))
                .collect()
        });
        assert_eq!(submitted.len(), SUBMITTERS * PER_THREAD);
        daemon.wait_idle();

        // No job lost: every submission resolved, bit-identical to its
        // spec's cold solve.
        for (which, id) in &submitted {
            let outcome = daemon
                .outcome(*id)
                .unwrap_or_else(|| panic!("job {id:?} lost at {workers} workers"));
            assert_eq!(outcome.result.stop, StopReason::Completed);
            assert_eq!(
                outcome.result.reward.to_bits(),
                direct[*which].reward.to_bits(),
                "{workers} workers: spec {which} diverged"
            );
            assert_eq!(outcome.result.floorplan, direct[*which].floorplan);
            assert_eq!(outcome.result.evaluations, direct[*which].evaluations);
        }

        // No job double-run, counters reconcile: each distinct fingerprint
        // was solved and inserted exactly once, every other submission was
        // a counted hit, and every submission got exactly one counted
        // lookup.
        let stats = daemon.engine().cache_stats();
        assert_eq!(stats.insertions, specs.len() as u64, "{workers} workers");
        assert_eq!(stats.misses, specs.len() as u64, "{workers} workers");
        assert_eq!(
            stats.hits,
            (submitted.len() - specs.len()) as u64,
            "{workers} workers"
        );
        assert_eq!(stats.hits + stats.misses, submitted.len() as u64);

        let report = daemon.shutdown();
        assert_eq!(report.resolved, submitted.len());
        assert_eq!(report.completed, submitted.len());
    }
}

//! # analog-floorplan — workspace facade
//!
//! This crate re-exports the public API of the analog IC floorplanning stack
//! (R-GCN + reinforcement-learning floorplanner, metaheuristic baselines,
//! global router and procedural layout generator) so that the examples and
//! integration tests in the repository root can use a single dependency.
//!
//! See the individual crates for full documentation:
//!
//! * [`afp_circuit`] — circuit netlists, functional blocks, constraints,
//!   synthetic industrial circuit generators, structure recognition.
//! * [`afp_layout`] — placement grid, masks, HPWL / dead-space metrics,
//!   sequence-pair model, floorplan export.
//! * [`afp_tensor`] — the neural-network substrate.
//! * [`afp_gnn`] — R-GCN circuit representation learning.
//! * [`afp_rl`] — the masked-PPO floorplanning agent and curriculum training.
//! * [`afp_metaheuristics`] — SA / GA / PSO / RL-SA / sequence-pair RL baselines.
//! * [`afp_route`] — OARSMT global routing and procedural layout completion.
//! * [`afp_core`] — the end-to-end [`afp_core::pipeline::LayoutPipeline`].
//! * [`afp_par`] — the persistent worker pool, run-control vocabulary
//!   (deadlines, budgets, cancellation) and, under `fault-inject`, the
//!   deterministic fault-injection harness.
//! * [`afp_serve`] — floorplanning as a service: canonical problem
//!   fingerprints, the content-addressed result cache, and the sharded,
//!   cancellable job engine.

pub use afp_circuit as circuit;
pub use afp_core as core;
pub use afp_par as par;
pub use afp_gnn as gnn;
pub use afp_layout as layout;
pub use afp_metaheuristics as metaheuristics;
pub use afp_rl as rl;
pub use afp_route as route;
pub use afp_serve as serve;
pub use afp_tensor as tensor;

//! Reproduces the paper's Fig. 2: the 8-structure OTA and its relational
//! circuit graph.
//!
//! ```bash
//! cargo run --release --example circuit_graph
//! ```
//!
//! The device-level schematic (instance names follow the figure) is run
//! through the structure-recognition substitute, and the resulting block-level
//! circuit is converted into the heterogeneous graph the R-GCN consumes:
//! connectivity edges plus alignment / symmetry relation edges.

use analog_floorplan::circuit::{generators, recognition, CircuitGraph, EdgeRelation};

fn main() {
    // Device-level schematic of the Fig. 2 OTA.
    let schematic = generators::ota8_schematic();
    println!(
        "schematic `{}`: {} devices, {} nets",
        schematic.name,
        schematic.devices.len(),
        schematic.connections.len()
    );

    // Structure recognition groups devices into functional blocks.
    let recognized = recognition::recognize(&schematic);
    println!("\nrecognized functional blocks:");
    for block in &recognized.blocks {
        println!(
            "  {:<14} {:<22} area = {:>7.2} um^2, {} devices",
            block.name,
            format!("{:?}", block.kind),
            block.area_um2,
            block.devices.len()
        );
    }

    // The pre-abstracted benchmark version of the same circuit (used by the
    // experiments) and its relational graph.
    let circuit = generators::ota8();
    let graph = CircuitGraph::from_circuit(&circuit);
    println!(
        "\nbenchmark circuit `{}`: {} nodes, {} feature dims per node",
        circuit.name,
        graph.num_nodes(),
        graph.feature_dim()
    );
    for relation in EdgeRelation::ALL {
        println!("  {:<22} {} edges", format!("{relation:?}"), graph.num_edges(relation));
    }
    println!("\nadjacency (connectivity):");
    for node in 0..graph.num_nodes() {
        let name = &circuit.blocks[node].name;
        let neighbors: Vec<&str> = graph
            .neighbors(EdgeRelation::Connectivity, node)
            .iter()
            .map(|&n| circuit.blocks[n].name.as_str())
            .collect();
        println!("  {:<10} -> {}", name, neighbors.join(", "));
    }
}

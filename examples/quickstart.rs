//! Quickstart: floorplan a small OTA and complete its layout.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds the 3-structure OTA used in the paper's training set,
//! floorplans it with an (untrained) R-GCN + RL agent — action masking
//! guarantees a valid, overlap-free floorplan even before training — and then
//! runs the OARSMT global router and the procedural layout completion,
//! printing the metrics the paper reports.

use analog_floorplan::circuit::generators;
use analog_floorplan::core::LayoutPipeline;
use analog_floorplan::rl::{AgentConfig, FloorplanAgent};

fn main() {
    // 1. Pick a circuit (see `afp_circuit::generators` for the full set).
    let circuit = generators::ota3();
    println!(
        "circuit: {} ({} blocks, {} nets, {} constraints)",
        circuit.name,
        circuit.num_blocks(),
        circuit.num_nets(),
        circuit.constraints.len()
    );

    // 2. Create the floorplanning agent. `AgentConfig::paper()` selects the
    //    full architecture of the paper; the small configuration keeps this
    //    example fast on any machine.
    let agent = FloorplanAgent::new(AgentConfig::small());

    // 3. Run the end-to-end pipeline: floorplan → global routing → layout.
    let mut pipeline = LayoutPipeline::with_agent(agent);
    let result = pipeline.run(&circuit);

    println!("floorplan reward (Eq. 5): {:.3}", result.floorplan_reward);
    println!(
        "floorplan: HPWL = {:.1} um, dead space = {:.1}%",
        result.floorplan_metrics.hpwl_um,
        result.floorplan_metrics.dead_space * 100.0
    );
    println!(
        "layout: area = {:.1} um^2, dead space = {:.1}%, routed wirelength = {:.1} um, vias = {}",
        result.layout.area_um2,
        result.layout.dead_space * 100.0,
        result.layout.wirelength_um,
        result.layout.via_count
    );
    println!(
        "layout is {} (DRC violations: {}, unrouted nets: {})",
        if result.layout.is_clean() { "clean" } else { "NOT clean" },
        result.layout.drc_violations.len(),
        result.layout.routing.incomplete_nets()
    );

    println!("\nfloorplan (32x32 grid):\n{}", result.to_ascii());
}

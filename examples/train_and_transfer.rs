//! Train a small agent with the hybrid curriculum and transfer it to an
//! unseen circuit (zero-shot and few-shot), mirroring the protocol of the
//! paper's Table I at a size that runs in well under a minute on a laptop.
//!
//! ```bash
//! cargo run --release --example train_and_transfer
//! ```

use analog_floorplan::circuit::generators;
use analog_floorplan::gnn::{pretrain, PretrainConfig};
use analog_floorplan::rl::{train_with_encoder, TrainConfig};

fn main() {
    // 1. Pre-train the R-GCN reward model on a small floorplan/reward dataset
    //    and keep its encoder (paper §IV-C).
    let pretrain_cfg = PretrainConfig {
        samples: 16,
        epochs: 4,
        ..PretrainConfig::small()
    };
    let pretrained = pretrain(&pretrain_cfg);
    println!(
        "R-GCN pre-training: {} train / {} val samples, final val MSE = {:.3}",
        pretrained.train_size,
        pretrained.validation_size,
        pretrained.final_validation_mse()
    );
    let encoder = pretrained.model.into_encoder();

    // 2. Train the RL agent with the hybrid curriculum on the training
    //    circuits (paper §IV-D5). The configuration is intentionally tiny;
    //    `TrainConfig::paper()` reproduces the full 4096-episode schedule.
    let train_cfg = TrainConfig {
        episodes_per_circuit: 12,
        episodes_per_update: 4,
        ..TrainConfig::small()
    };
    let curriculum = vec![generators::ota3(), generators::bias3()];
    let mut result = train_with_encoder(encoder, &curriculum, &train_cfg);
    println!("\ntraining history (one row per PPO update):");
    for stats in &result.history {
        println!(
            "  epoch {:>3}  stage {} ({:<8})  reward mean {:>8.2}  approx KL {:>8.4}  completed {:>5.1}%",
            stats.epoch,
            stats.stage,
            stats.circuit,
            stats.episode_reward_mean,
            stats.approx_kl,
            stats.completion_rate * 100.0
        );
    }

    // 3. Zero-shot transfer to an unseen circuit (the RS latch), then a short
    //    few-shot fine-tuning on the same circuit.
    let unseen = generators::rs_latch();
    let zero_shot = result.agent.solve(&unseen);
    println!(
        "\nzero-shot on {}: reward {:.2}, HPWL {:.1} um, dead space {:.1}%  ({:.3} s)",
        unseen.name,
        zero_shot.reward,
        zero_shot.metrics.hpwl_um,
        zero_shot.metrics.dead_space * 100.0,
        zero_shot.runtime_s
    );

    let rewards = result.agent.fine_tune(&unseen, 8);
    let few_shot = result.agent.solve(&unseen);
    println!(
        "after {}-episode fine-tuning: reward {:.2} (fine-tune episode rewards: {:?})",
        rewards.len(),
        few_shot.reward,
        rewards.iter().map(|r| (r * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
}

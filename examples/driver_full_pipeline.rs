//! Full pipeline on the 17-structure low-side driver (the circuit behind the
//! paper's Fig. 7 and the largest row of Table II): floorplanning, OARSMT
//! global routing, channel definition and procedural layout completion, with
//! an SVG rendering of the result written to `driver_layout.svg`.
//!
//! ```bash
//! cargo run --release --example driver_full_pipeline
//! ```

use std::fs;

use analog_floorplan::circuit::generators;
use analog_floorplan::core::LayoutPipeline;
use analog_floorplan::metaheuristics::{Baseline, SaConfig};

fn main() {
    let circuit = generators::driver();
    println!(
        "circuit: {} ({} blocks, {} nets, total block area {:.0} um^2)",
        circuit.name,
        circuit.num_blocks(),
        circuit.num_nets(),
        circuit.total_block_area()
    );

    // The driver is large; the greedy constructive placer gives a quick
    // routing-ready floorplan. Swap in `LayoutPipeline::with_agent(...)` to use
    // a trained RL agent, or a baseline as below for comparison.
    let mut ours = LayoutPipeline::with_greedy();
    let result = ours.run(&circuit);
    println!("\n== greedy constructive floorplan + procedural completion ==");
    print_result(&result);

    let mut sa = LayoutPipeline::with_baseline(Baseline::Sa(SaConfig::small()), 1);
    let sa_result = sa.run(&circuit);
    println!("\n== simulated-annealing baseline (congestion-aware spacing) ==");
    print_result(&sa_result);

    let svg = result.to_svg();
    let path = "driver_layout.svg";
    match fs::write(path, &svg) {
        Ok(()) => println!("\nwrote the placed-and-routed layout rendering to {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
    println!("\nchannels extracted: {}", result.layout.channels.len());
    let congested = result
        .layout
        .channels
        .iter()
        .filter(|c| c.is_congested(ours.config().procedural.track_pitch_um))
        .count();
    println!("congested channels: {congested}");
}

fn print_result(result: &analog_floorplan::core::PipelineResult) {
    println!(
        "  floorplan: reward {:.2}, HPWL {:.1} um, dead space {:.1}%, {:.2} s",
        result.floorplan_reward,
        result.floorplan_metrics.hpwl_um,
        result.floorplan_metrics.dead_space * 100.0,
        result.floorplan_time_s
    );
    println!(
        "  layout:    area {:.1} um^2, dead space {:.1}%, wirelength {:.1} um, vias {}, DRC violations {}",
        result.layout.area_um2,
        result.layout.dead_space * 100.0,
        result.layout.wirelength_um,
        result.layout.via_count,
        result.layout.drc_violations.len()
    );
}

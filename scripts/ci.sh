#!/usr/bin/env bash
# Tier-1 verification plus the repo's own extended checks.
#
#   tier-1:   cargo build --release && cargo test -q
#   extended: workspace-wide tests, a compile check of every criterion
#             bench, and a smoke run of the perf snapshot (the harness must
#             never rot between perf PRs: the run fails the build if
#             bench_snapshot panics or emits malformed JSON).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace   # superset of tier-1's `cargo test -q`

# Incremental-pipeline safety net: the differential proptests (incremental vs
# full realization bit-identity, incremental FAST-SP pack vs full sweep,
# incremental metrics vs full rescan, parallel EvalPool vs the serial
# cost_cached loop, FAST-SP vs legacy oracle, BitGrid vs scalar oracle) run
# as part of the workspace tests above; run them once more by name so a
# filtered or partially-cached test run cannot silently skip them, then run
# the metaheuristics tests again with each feature-gated oracle
# (`full-realize`, `full-metrics`) as the CostCache default.
for diff_test in \
    incremental_realize_matches_full_after_perturbation_sequences \
    incremental_pack_matches_full_on_perturbation_walks \
    incremental_metrics_match_full_rescan_oracle \
    eval_pool_matches_serial_cost_cached \
    multistart_sa_matches_serial_replay \
    sa_with_generous_deadline_replays_the_unbounded_run \
    serve_fingerprints_are_injective_and_canonical \
    serve_cache_hit_replays_the_cold_solve_bit_for_bit \
    serve_persist_round_trip_restores_bit_identical_hits \
    serve_daemon_admits_while_draining_and_matches_cold_solves \
    serve_daemon_stress_submitters_race_drain \
    multiword_grid_fits_anchors_and_nearest_fit_match_scalar \
    incremental_realize_matches_full_beyond_64_blocks \
    incremental_metrics_match_full_beyond_64_blocks; do
    diff_out="$(cargo test --test properties "$diff_test" 2>&1)" \
        || { echo "$diff_out"; exit 1; }
    echo "$diff_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' \
        || { echo "ci: differential proptest filter '$diff_test' matched no tests" >&2; exit 1; }
done
# The EvalPool, multi-start and serve differential proptests once more under
# each oracle feature (the root manifest forwards them to afp-metaheuristics
# and afp-serve), so the pool's worker caches — and the serve layer's
# memoization contract — are exercised against the full-rebuild realization
# and full-rescan metrics paths too — a bug that only shows against an
# oracle default would otherwise hide behind the incremental defaults above.
for oracle_feature in full-realize full-metrics; do
    for pool_test in eval_pool_matches_serial_cost_cached \
        multistart_sa_matches_serial_replay \
        serve_cache_hit_replays_the_cold_solve_bit_for_bit \
        serve_persist_round_trip_restores_bit_identical_hits \
        serve_daemon_admits_while_draining_and_matches_cold_solves \
        multiword_grid_fits_anchors_and_nearest_fit_match_scalar \
        incremental_realize_matches_full_beyond_64_blocks \
        incremental_metrics_match_full_beyond_64_blocks; do
        diff_out="$(cargo test --test properties "$pool_test" \
            --features "$oracle_feature" 2>&1)" \
            || { echo "$diff_out"; exit 1; }
        echo "$diff_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' \
            || { echo "ci: $pool_test matched no tests under $oracle_feature" >&2; exit 1; }
    done
done
cargo test -q -p afp-metaheuristics --features full-realize
cargo test -q -p afp-metaheuristics --features full-metrics

# Large-n zero-fallback tripwires: the `fallback_rescans` counter is
# structurally never incremented (the full-rescan fallback branch was deleted
# when the metric masks went multi-word), and these unit tests pin that claim
# on 70- and 200-block circuits — past every historical 64-element ceiling.
# Run them by name so a filtered run cannot silently skip them. (The
# feature-gated `cargo test -p afp-metaheuristics` runs above exercise the
# 200-block pipeline test against both oracle defaults as well.)
for fallback_test in \
    "afp-layout|large_circuits_run_incrementally_with_zero_fallbacks" \
    "afp-metaheuristics|large_n_cost_pipeline_runs_incrementally_with_zero_fallbacks"; do
    pkg="${fallback_test%%|*}"
    name="${fallback_test##*|}"
    fb_out="$(cargo test -p "$pkg" "$name" 2>&1)" \
        || { echo "$fb_out"; exit 1; }
    echo "$fb_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' \
        || { echo "ci: zero-fallback test filter '$name' matched no tests" >&2; exit 1; }
done

# Robustness safety net: the deterministic fault-injection proptests (pool
# survives injected panics/stalls; multistart winner reduces deterministically
# over the survivors) live behind the `fault-inject` feature, so the
# workspace run above never sees them — run them here by name. `timeout`
# guards the no-deadlock claim itself: a hung pool must fail CI, not wedge it.
for fault_test in \
    "afp-par|pool_survives_injected_faults" \
    "analog-floorplan|multistart_survivors_winner_is_deterministic_under_injected_faults"; do
    pkg="${fault_test%%|*}"
    name="${fault_test##*|}"
    fault_out="$(timeout 600 cargo test -p "$pkg" --features fault-inject "$name" 2>&1)" \
        || { echo "$fault_out"; echo "ci: fault-injection test '$name' failed or timed out" >&2; exit 1; }
    echo "$fault_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' \
        || { echo "ci: fault-injection test filter '$name' matched no tests" >&2; exit 1; }
done

# Rustdoc is part of the public API surface: build the workspace docs with
# warnings denied so broken intra-doc links or missing docs fail CI.
# `--workspace` is load-bearing: without it cargo documents only the root
# facade crate, which silently skipped every member crate's rustdoc.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

cargo bench --no-run

# Perf-harness smoke: run bench_snapshot into a scratch directory (so the
# committed BENCH_pack.json — the canonical perf trajectory — is not churned
# by every CI run) and validate the emitted JSON. Perf PRs refresh the real
# snapshot deliberately by running bench_snapshot from the repo root.
repo_root="$(pwd)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
# `timeout` bounds the smoke run: the snapshot binary drives every parallel
# subsystem, so a dispatch/cancellation regression that deadlocks the pool
# must fail CI here instead of hanging it.
(cd "$smoke_dir" && timeout 1800 cargo run --release --manifest-path "$repo_root/Cargo.toml" \
    -p afp-bench --bin bench_snapshot)
if command -v python3 > /dev/null; then
    python3 - "$smoke_dir/BENCH_pack.json" "$repo_root/BENCH_pack.json" <<'PY' \
        || { echo "ci: bench_snapshot snapshot invalid" >&2; exit 1; }
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
with open(sys.argv[2]) as f:
    committed = json.load(f)
for section in ("pack", "snap", "large_n", "masks", "incremental_realize",
                "eval_pool", "pool_overhead", "multistart", "serve",
                "serve_daemon", "sa_locality", "sa"):
    assert section in snap, f"missing snapshot section: {section}"
# The large-n tier: one row per block count past the old 64-element ceilings,
# each run end to end through the incremental cost pipeline on a multi-word
# grid. `fallback_rescans` is the tripwire for the deleted full-rescan
# branch: any nonzero value means a "large" circuit silently fell back to
# O(n) rescans, which is exactly the regression this tier exists to catch.
large = snap["large_n"]
assert [row["blocks"] for row in large] == [200, 500, 1000], \
    "large_n tier does not cover the expected block counts"
assert [row["grid_side"] for row in large] == [64, 96, 128], \
    "large_n grid sides diverged from grid_side_for()"
for row in large:
    for key in ("sa_move_ns", "eval_pool_generation_ns", "multistart_ns"):
        assert row[key] > 0.0, f"nonsensical large_n timing: {key}"
    assert row["fallback_rescans"] == 0, \
        f"incremental metrics fell back at n={row['blocks']}"
inc = snap["incremental_realize"]
for key in ("incremental_move_ns", "incremental_realize_full_metrics_move_ns",
            "full_move_ns", "speedup", "replay_hit_rate", "pack_replay_rate"):
    assert key in inc, f"missing incremental_realize key: {key}"
assert 0.0 <= inc["replay_hit_rate"] <= 1.0, "hit rate out of range"
assert 0.0 <= inc["pack_replay_rate"] <= 1.0, "pack replay rate out of range"
pool = snap["eval_pool"]
for key in ("hardware_threads", "population", "serial_generation_ns",
            "workers1_generation_ns", "workers2_generation_ns",
            "workers4_generation_ns", "speedup_workers4", "bit_identical"):
    assert key in pool, f"missing eval_pool key: {key}"
# bench_snapshot computes the verdict by comparing pool output against the
# serial loop and aborts on divergence before writing any JSON, so a present
# section with a true verdict proves the check ran and passed. The speedup is
# machine-dependent (≈ hardware_threads-bounded), so only its presence and
# sign are gated.
assert pool["bit_identical"] is True, "EvalPool bit-identity check not recorded"
assert pool["speedup_workers4"] > 0.0, "nonsensical eval_pool speedup"
po = snap["pool_overhead"]
for key in ("workers", "batch_items", "spawn_batch_ns", "parked_batch_ns",
            "spawn_over_parked", "parked_batches", "parked_threads_woken"):
    assert key in po, f"missing pool_overhead key: {key}"
# The persistent pool's acceptance bar: a parked dispatch (epoch bump +
# unpark per active worker) must cost strictly less per batch than the
# spawn-per-call shim's thread spawn-and-join — on any machine, including the
# 1-thread container (both models context-switch there; only the shim also
# creates and tears down threads).
assert po["parked_batch_ns"] > 0.0, "nonsensical parked dispatch time"
assert po["parked_batch_ns"] < po["spawn_batch_ns"], \
    "parked pool dispatch is not cheaper than spawn-per-call"
ms = snap["multistart"]
for key in ("chains", "chain_iterations", "workers1_ns", "workers2_ns",
            "workers1_chains_per_sec", "workers2_chains_per_sec",
            "bit_identical"):
    assert key in ms, f"missing multistart key: {key}"
# Same convention as eval_pool: the snapshot binary compares every pooled
# chain against its serial replay (and the winner against the serial
# reduction) and aborts on divergence before writing JSON.
assert ms["bit_identical"] is True, "multistart bit-identity check not recorded"
assert ms["workers1_chains_per_sec"] > 0.0, "nonsensical multistart throughput"
assert ms["workers2_chains_per_sec"] > 0.0, "nonsensical multistart throughput"
serve = snap["serve"]
for key in ("cold_solve_ns", "cache_hit_ns", "hit_speedup", "batch_jobs",
            "jobs_per_sec_workers1", "jobs_per_sec_workers2",
            "jobs_per_sec_workers4", "bit_identical"):
    assert key in serve, f"missing serve key: {key}"
# Same convention again: bench_snapshot asserts the memoized result is
# bit-identical to the cold solve before timing anything, so a written
# section with a true verdict proves the check passed. A cache hit that is
# not dramatically cheaper than a cold solve means memoization is broken
# (the hit path re-solved); 10x is far below the observed ~200x but far
# above any plausible noise.
assert serve["bit_identical"] is True, "serve bit-identity check not recorded"
assert serve["cache_hit_ns"] > 0.0, "nonsensical serve hit latency"
assert serve["cache_hit_ns"] * 10.0 < serve["cold_solve_ns"], \
    "serve cache hit is not meaningfully cheaper than a cold solve"
for key in ("jobs_per_sec_workers1", "jobs_per_sec_workers2",
            "jobs_per_sec_workers4"):
    assert serve[key] > 0.0, f"nonsensical serve throughput: {key}"
daemon = snap["serve_daemon"]
for key in ("batch_jobs", "drain_jobs_per_sec_workers1",
            "drain_jobs_per_sec_workers2", "drain_jobs_per_sec_workers4",
            "cold_solve_ns", "restored_hit_ns", "restore_speedup",
            "snapshot_bytes", "bit_identical"):
    assert key in daemon, f"missing serve_daemon key: {key}"
# bench_snapshot restores the persisted cache into a fresh engine and asserts
# the repeat job is a bit-identical hit before timing anything — a written
# section with a true verdict proves restore preserved the memoized result
# exactly. The restored hit carries an amortized share of the snapshot decode,
# so the bar sits at 10x under the cold solve (observed far higher) rather
# than matching the in-memory hit's ~200x.
assert daemon["bit_identical"] is True, \
    "serve_daemon restore bit-identity check not recorded"
assert daemon["snapshot_bytes"] > 0, "empty cache snapshot"
assert daemon["restored_hit_ns"] > 0.0, "nonsensical restored-hit latency"
assert daemon["restored_hit_ns"] * 10.0 < daemon["cold_solve_ns"], \
    "restored cache hit is not meaningfully cheaper than a cold solve"
for key in ("drain_jobs_per_sec_workers1", "drain_jobs_per_sec_workers2",
            "drain_jobs_per_sec_workers4"):
    assert daemon[key] > 0.0, f"nonsensical drain-loop throughput: {key}"
loc = snap["sa_locality"]
for key in ("locality_bias", "uniform_move_ns", "local_move_ns",
            "uniform_pack_replay_rate", "local_pack_replay_rate",
            "uniform_snap_hit_rate", "local_snap_hit_rate"):
    assert key in loc, f"missing sa_locality key: {key}"
for key in ("uniform_pack_replay_rate", "local_pack_replay_rate",
            "uniform_snap_hit_rate", "local_snap_hit_rate"):
    assert 0.0 <= loc[key] <= 1.0, f"{key} out of range"
# The replay counters come from a fixed-length, fixed-seed walk on fresh
# caches (not from the wall-clock-calibrated timing loops), so they are fully
# deterministic: the whole point of the locality mix is that biased walks
# replay more, and a change that breaks this ordering should fail loudly.
assert loc["local_pack_replay_rate"] >= loc["uniform_pack_replay_rate"], \
    "locality bias did not increase pack replay"
assert loc["local_snap_hit_rate"] >= loc["uniform_snap_hit_rate"], \
    "locality bias did not increase snap replay hits"
# Throughput band on the paper-scale workload: the smoke run's 19-block SA
# median must stay within 4x of the committed snapshot's. The committed value
# is the canonical perf trajectory refreshed deliberately by perf PRs; 4x is
# far beyond CI-machine noise (observed well under 2x run to run) but well
# inside any real regression from, e.g., the small-grid fast path losing its
# inline storage. Only the lower bound is gated — getting faster is fine.
smoke_sa = snap["sa"]["moves_per_sec"]
committed_sa = committed["sa"]["moves_per_sec"]
assert smoke_sa > 0 and committed_sa > 0, "nonsensical SA throughput"
assert smoke_sa * 4 >= committed_sa, (
    f"19-block SA throughput fell out of band: smoke {smoke_sa} moves/s "
    f"vs committed {committed_sa} moves/s (floor committed/4)")
PY
else
    echo "ci: python3 not found, skipping BENCH_pack.json JSON validation" >&2
fi

echo "ci: all checks passed"

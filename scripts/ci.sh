#!/usr/bin/env bash
# Tier-1 verification plus the repo's own extended checks.
#
#   tier-1:   cargo build --release && cargo test -q
#   extended: workspace-wide tests, a compile check of every criterion
#             bench, and a smoke run of the perf snapshot (the harness must
#             never rot between perf PRs: the run fails the build if
#             bench_snapshot panics or emits malformed JSON).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace   # superset of tier-1's `cargo test -q`
cargo bench --no-run

# Perf-harness smoke: run bench_snapshot into a scratch directory (so the
# committed BENCH_pack.json — the canonical perf trajectory — is not churned
# by every CI run) and validate the emitted JSON. Perf PRs refresh the real
# snapshot deliberately by running bench_snapshot from the repo root.
repo_root="$(pwd)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && cargo run --release --manifest-path "$repo_root/Cargo.toml" \
    -p afp-bench --bin bench_snapshot)
if command -v python3 > /dev/null; then
    python3 -m json.tool "$smoke_dir/BENCH_pack.json" > /dev/null \
        || { echo "ci: bench_snapshot emitted malformed JSON" >&2; exit 1; }
else
    echo "ci: python3 not found, skipping BENCH_pack.json JSON validation" >&2
fi

echo "ci: all checks passed"

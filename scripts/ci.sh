#!/usr/bin/env bash
# Tier-1 verification plus the repo's own extended checks.
#
#   tier-1:   cargo build --release && cargo test -q
#   extended: workspace-wide tests, a compile check of every criterion
#             bench, and a smoke run of the perf snapshot (the harness must
#             never rot between perf PRs: the run fails the build if
#             bench_snapshot panics or emits malformed JSON).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace   # superset of tier-1's `cargo test -q`

# Incremental-pipeline safety net: the differential proptests (incremental vs
# full realization bit-identity, incremental FAST-SP pack vs full sweep,
# incremental metrics vs full rescan, FAST-SP vs legacy oracle, BitGrid vs
# scalar oracle) run as part of the workspace tests above; run them once more
# by name so a filtered or partially-cached test run cannot silently skip
# them, then run the metaheuristics tests again with each feature-gated
# oracle (`full-realize`, `full-metrics`) as the CostCache default.
for diff_test in \
    incremental_realize_matches_full_after_perturbation_sequences \
    incremental_pack_matches_full_on_perturbation_walks \
    incremental_metrics_match_full_rescan_oracle; do
    diff_out="$(cargo test --test properties "$diff_test" 2>&1)" \
        || { echo "$diff_out"; exit 1; }
    echo "$diff_out" | grep -qE 'test result: ok\. [1-9][0-9]* passed' \
        || { echo "ci: differential proptest filter '$diff_test' matched no tests" >&2; exit 1; }
done
cargo test -q -p afp-metaheuristics --features full-realize
cargo test -q -p afp-metaheuristics --features full-metrics

# Rustdoc is part of the public API surface: build the workspace docs with
# warnings denied so broken intra-doc links or missing docs fail CI.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

cargo bench --no-run

# Perf-harness smoke: run bench_snapshot into a scratch directory (so the
# committed BENCH_pack.json — the canonical perf trajectory — is not churned
# by every CI run) and validate the emitted JSON. Perf PRs refresh the real
# snapshot deliberately by running bench_snapshot from the repo root.
repo_root="$(pwd)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && cargo run --release --manifest-path "$repo_root/Cargo.toml" \
    -p afp-bench --bin bench_snapshot)
if command -v python3 > /dev/null; then
    python3 - "$smoke_dir/BENCH_pack.json" <<'PY' \
        || { echo "ci: bench_snapshot snapshot invalid" >&2; exit 1; }
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
for section in ("pack", "snap", "masks", "incremental_realize", "sa"):
    assert section in snap, f"missing snapshot section: {section}"
inc = snap["incremental_realize"]
for key in ("incremental_move_ns", "incremental_realize_full_metrics_move_ns",
            "full_move_ns", "speedup", "replay_hit_rate", "pack_replay_rate"):
    assert key in inc, f"missing incremental_realize key: {key}"
assert 0.0 <= inc["replay_hit_rate"] <= 1.0, "hit rate out of range"
assert 0.0 <= inc["pack_replay_rate"] <= 1.0, "pack replay rate out of range"
PY
else
    echo "ci: python3 not found, skipping BENCH_pack.json JSON validation" >&2
fi

echo "ci: all checks passed"

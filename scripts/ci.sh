#!/usr/bin/env bash
# Tier-1 verification plus the repo's own extended checks.
#
#   tier-1:   cargo build --release && cargo test -q
#   extended: workspace-wide tests and a compile check of every criterion
#             bench (the perf harness must never rot between perf PRs).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace   # superset of tier-1's `cargo test -q`
cargo bench --no-run
echo "ci: all checks passed"
